package solver

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hardsnap/internal/expr"
)

// chooser abstracts the random source so the same constraint generator
// drives both the seeded property tests and the byte-driven fuzz
// harness.
type chooser interface {
	pick(n int) int
}

type randChooser struct{ r *rand.Rand }

func (c randChooser) pick(n int) int { return c.r.Intn(n) }

// byteChooser consumes fuzz input bytes; exhausted input always picks
// 0, which drives the generator toward quick termination.
type byteChooser struct {
	data []byte
	i    int
}

func (c *byteChooser) pick(n int) int {
	if c.i >= len(c.data) {
		return 0
	}
	v := int(c.data[c.i]) % n
	c.i++
	return v
}

// genTerm builds a random width-w term over the variable pool.
func genTerm(c chooser, b *expr.Builder, vars []*expr.Term, w uint, depth int) *expr.Term {
	if depth <= 0 || c.pick(4) == 0 {
		if c.pick(3) == 0 {
			return b.Const(uint64(c.pick(1<<w)), w)
		}
		return vars[c.pick(len(vars))]
	}
	x := genTerm(c, b, vars, w, depth-1)
	y := genTerm(c, b, vars, w, depth-1)
	switch c.pick(12) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.Mul(x, y)
	case 3:
		return b.And(x, y)
	case 4:
		return b.Or(x, y)
	case 5:
		return b.Xor(x, y)
	case 6:
		return b.Shl(x, b.Const(uint64(c.pick(int(w))), w))
	case 7:
		return b.UDiv(x, y)
	case 8:
		return b.URem(x, y)
	case 9:
		return b.Not(x)
	case 10:
		return b.Neg(x)
	default:
		return b.Ite(genBool(c, b, vars, depth-1), x, y)
	}
}

// genBool builds a random width-1 constraint term.
func genBool(c chooser, b *expr.Builder, vars []*expr.Term, depth int) *expr.Term {
	w := vars[0].Width()
	if depth > 0 && c.pick(4) == 0 {
		switch c.pick(3) {
		case 0:
			return b.And(genBool(c, b, vars, depth-1), genBool(c, b, vars, depth-1))
		case 1:
			return b.Or(genBool(c, b, vars, depth-1), genBool(c, b, vars, depth-1))
		default:
			return b.NotBool(genBool(c, b, vars, depth-1))
		}
	}
	x := genTerm(c, b, vars, w, depth)
	y := genTerm(c, b, vars, w, depth)
	switch c.pick(6) {
	case 0:
		return b.Eq(x, y)
	case 1:
		return b.Ne(x, y)
	case 2:
		return b.Ult(x, y)
	case 3:
		return b.Ule(x, y)
	case 4:
		return b.Slt(x, y)
	default:
		return b.Sle(x, y)
	}
}

// genQuery builds one constraint conjunction (1-6 constraints).
func genQuery(c chooser, b *expr.Builder, vars []*expr.Term) []*expr.Term {
	n := 1 + c.pick(6)
	cs := make([]*expr.Term, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, genBool(c, b, vars, 2))
	}
	return cs
}

func varPool(b *expr.Builder, w uint) []*expr.Term {
	names := []string{"a", "b", "c", "d", "e"}
	vars := make([]*expr.Term, len(names))
	for i, n := range names {
		vars[i] = b.Var(n, w)
	}
	return vars
}

// diffOne runs one query on the plain reference solver and the
// (long-lived) optimized solver and cross-checks the verdicts and both
// models. The optimized solver is reused across queries on purpose: the
// model-reuse ring, unsat-core list and incremental context only have
// state to corrupt from the second query on.
func diffOne(t errorSink, b *expr.Builder, opt *Solver, cs []*expr.Term) bool {
	plain := New(0)
	pres, pm, perr := plain.Check(cs)
	ores, om, oerr := opt.Check(cs)
	if perr != nil || oerr != nil {
		t.Errorf("unexpected error: plain=%v opt=%v", perr, oerr)
		return false
	}
	if pres != ores {
		t.Errorf("verdict mismatch: plain=%v optimized=%v on %v", pres, ores, cs)
		return false
	}
	if pres == Sat {
		for _, c := range cs {
			if expr.Eval(c, pm) != 1 {
				t.Errorf("plain model %v does not satisfy %v", pm, c)
				return false
			}
			if expr.Eval(c, om) != 1 {
				t.Errorf("optimized model %v does not satisfy %v", om, c)
				return false
			}
		}
	}
	return true
}

// errorSink lets diffOne serve *testing.T, *testing.F and quick.Check.
type errorSink interface {
	Errorf(format string, args ...any)
}

// optionCombos is every stage in isolation plus the full stack, so a
// verdict divergence is attributable to one stage.
func optionCombos() map[string]Options {
	return map[string]Options{
		"rewrite":     {Rewrite: true},
		"slicing":     {Slicing: true},
		"model-reuse": {ModelReuse: true},
		"incremental": {Incremental: true},
		"full":        DefaultOptions(),
		"full+cache":  DefaultOptions(),
	}
}

// TestDifferentialRandom cross-checks the optimized pipeline against
// plain whole-query solving on seeded random conjunctions, per stage
// and for the whole stack.
func TestDifferentialRandom(t *testing.T) {
	for name, opts := range optionCombos() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 20; seed++ {
				b := expr.NewBuilder()
				vars := varPool(b, 4)
				opt := New(0)
				opt.Builder = b
				opt.Opts = opts
				if name == "full+cache" {
					opt.Cache = NewCache(0)
				}
				c := randChooser{rand.New(rand.NewSource(seed))}
				for q := 0; q < 25; q++ {
					diffOne(t, b, opt, genQuery(c, b, vars))
					if t.Failed() {
						t.Fatalf("seed %d query %d", seed, q)
					}
				}
			}
		})
	}
}

// TestDifferentialQuick is the testing/quick flavor: any uint64 seed
// must produce agreement across a batch of queries.
func TestDifferentialQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		b := expr.NewBuilder()
		vars := varPool(b, 4)
		opt := New(0)
		opt.Builder = b
		opt.Opts = DefaultOptions()
		opt.Cache = NewCache(0)
		c := randChooser{rand.New(rand.NewSource(int64(seed)))}
		for q := 0; q < 10; q++ {
			if !diffOne(t, b, opt, genQuery(c, b, vars)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDifferential drives the generator with raw fuzz bytes: every
// byte is one generator decision, so the fuzzer mutates constraint
// structure directly rather than a PRNG seed.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 127, 64, 32, 9, 200, 13, 77, 3, 8, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := expr.NewBuilder()
		vars := varPool(b, 4)
		opt := New(0)
		opt.Builder = b
		opt.Opts = DefaultOptions()
		opt.Cache = NewCache(0)
		c := &byteChooser{data: data}
		for q := 0; q < 4 && c.i < len(data); q++ {
			diffOne(t, b, opt, genQuery(c, b, vars))
		}
	})
}

// TestSlicingSharedVariableChains is the regression table for the
// partitioner around shared-variable chains: constraints linked only
// transitively (a touches x,y; b touches y,z) must stay in one slice,
// and genuinely independent groups must split.
func TestSlicingSharedVariableChains(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	s.Builder = b
	x, y, z, w := b.Var("x", 8), b.Var("y", 8), b.Var("z", 8), b.Var("w", 8)
	c := func(v uint64) *expr.Term { return b.Const(v, 8) }

	cases := []struct {
		name   string
		cs     []*expr.Term
		slices int
	}{
		{"chain-through-middle", []*expr.Term{b.Eq(b.Add(x, y), c(3)), b.Eq(b.Add(y, z), c(4))}, 1},
		{"three-link-chain", []*expr.Term{b.Ult(x, y), b.Ult(y, z), b.Ult(z, w)}, 1},
		{"two-independent-pairs", []*expr.Term{b.Eq(x, y), b.Eq(z, w)}, 2},
		{"fully-independent", []*expr.Term{b.Eq(x, c(1)), b.Eq(y, c(2)), b.Eq(z, c(3))}, 3},
		{"mixed", []*expr.Term{b.Eq(b.Add(x, y), c(9)), b.Ult(y, c(5)), b.Eq(z, w)}, 2},
		{"same-var-twice", []*expr.Term{b.Ult(x, c(5)), b.Ult(c(2), x)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := s.partition(tc.cs)
			if len(got) != tc.slices {
				t.Fatalf("partition produced %d slices, want %d: %v", len(got), tc.slices, got)
			}
			total := 0
			for _, sl := range got {
				total += len(sl)
			}
			if total != len(tc.cs) {
				t.Fatalf("partition dropped constraints: %d in, %d out", len(tc.cs), total)
			}
		})
	}

	// Verdict-level regression: a chain that is unsatisfiable only
	// through its shared variable must not be split apart.
	s2 := New(0)
	s2.Builder = b
	s2.Opts = DefaultOptions()
	res, _, err := s2.Check([]*expr.Term{
		b.Eq(x, y), b.Eq(y, z), b.Eq(z, c(5)), b.Ne(x, c(5)),
	})
	if err != nil || res != Unsat {
		t.Fatalf("chained contradiction: got %v err=%v, want unsat", res, err)
	}
	// And the satisfiable version must produce a consistent model
	// across the chain.
	m, ok := func() (expr.Assignment, bool) {
		r, m, err := s2.Check([]*expr.Term{b.Eq(x, y), b.Eq(y, z), b.Eq(z, c(5))})
		return m, err == nil && r == Sat
	}()
	if !ok || m["x"] != 5 || m["y"] != 5 || m["z"] != 5 {
		t.Fatalf("chained equality model = %v, want all 5", m)
	}
}

// TestModelReuseHit: a remembered model that satisfies a later query
// answers it without solving.
func TestModelReuseHit(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	s.Builder = b
	s.Opts = Options{ModelReuse: true}
	x := b.Var("x", 8)
	if _, m := mustSat(t, s, []*expr.Term{b.Eq(x, b.Const(7, 8))}); m["x"] != 7 {
		t.Fatalf("x=%d, want 7", m["x"])
	}
	// x=7 also satisfies x>3: the ring must answer this.
	before := s.Stats.ModelHits
	mustSat(t, s, []*expr.Term{b.Ult(b.Const(3, 8), x)})
	if s.Stats.ModelHits != before+1 {
		t.Fatalf("ModelHits=%d, want %d", s.Stats.ModelHits, before+1)
	}
}

// TestUnsatCoreReuse: a remembered unsatisfiable set answers any
// superset query.
func TestUnsatCoreReuse(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	s.Builder = b
	s.Opts = Options{ModelReuse: true}
	x, y := b.Var("x", 8), b.Var("y", 8)
	core := []*expr.Term{b.Ult(x, b.Const(3, 8)), b.Ult(b.Const(5, 8), x)}
	mustUnsat(t, s, core)
	before := s.Stats.UnsatCoreHits
	mustUnsat(t, s, append([]*expr.Term{b.Eq(y, b.Const(1, 8))}, core...))
	if s.Stats.UnsatCoreHits != before+1 {
		t.Fatalf("UnsatCoreHits=%d, want %d", s.Stats.UnsatCoreHits, before+1)
	}
}

// TestIncrementalReuse: growing path-condition queries re-use guards
// instead of re-blasting, and verdicts stay correct after many
// interleaved Sat/Unsat queries on one context.
func TestIncrementalReuse(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	s.Builder = b
	s.Opts = Options{Incremental: true}
	x := b.Var("x", 16)
	var cs []*expr.Term
	for i := 0; i < 6; i++ {
		cs = append(cs, b.Ult(b.Const(uint64(i*3), 16), x))
		mustSat(t, s, cs)
	}
	if s.Stats.IncrementalReuses == 0 {
		t.Fatal("growing queries never re-used a guard")
	}
	// An unsat query must not poison the context for later queries.
	mustUnsat(t, s, append(append([]*expr.Term{}, cs...), b.Eq(x, b.Const(0, 16))))
	mustSat(t, s, cs)
}

// TestIncrementalBudget: an exhausted budget reports Unknown and the
// solver recovers on the next (cheap) query.
func TestIncrementalBudget(t *testing.T) {
	b := expr.NewBuilder()
	s := New(1)
	s.Builder = b
	s.Opts = DefaultOptions()
	x, y := b.Var("x", 24), b.Var("y", 24)
	hard := []*expr.Term{b.Eq(b.Mul(x, y), b.Const(0x7FFFFF, 24)), b.Ult(b.Const(1, 24), x), b.Ult(b.Const(1, 24), y)}
	res, _, err := s.Check(hard)
	if res != Unknown || err != ErrBudget {
		t.Fatalf("hard query under budget 1: got %v err=%v, want unknown/ErrBudget", res, err)
	}
	mustSat(t, s, []*expr.Term{b.Eq(x, b.Const(5, 24))})
}

// TestZeroValueSolverIsPlain: the zero-value Solver must behave as the
// unoptimized oracle (no stage counters move).
func TestZeroValueSolverIsPlain(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	mustSat(t, s, []*expr.Term{b.Ult(x, b.Const(9, 8)), b.Ult(b.Const(2, 8), x)})
	mustSat(t, s, []*expr.Term{b.Ult(x, b.Const(9, 8)), b.Ult(b.Const(2, 8), x)})
	st := s.Stats
	if st.Sliced != 0 || st.ModelHits != 0 || st.UnsatCoreHits != 0 || st.Rewrites != 0 || st.IncrementalReuses != 0 {
		t.Fatalf("zero-value solver moved optimization counters: %+v", st)
	}
	if st.WallNS <= 0 || st.Queries != 2 {
		t.Fatalf("wall/query accounting broken: %+v", st)
	}
}

// TestEnumerateVerdicts: Enumerate distinguishes exhaustion (Unsat)
// from stopping at max (Sat) from budget exhaustion (Unknown).
func TestEnumerateVerdicts(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	s.Builder = b
	s.Opts = DefaultOptions()
	x := b.Var("x", 8)
	cs := []*expr.Term{b.Ult(x, b.Const(3, 8))}

	vals, final := s.Enumerate(b, cs, x, 10)
	if len(vals) != 3 || final != Unsat {
		t.Fatalf("exhaustive enumeration: %d values, final=%v; want 3, unsat", len(vals), final)
	}
	vals, final = s.Enumerate(b, cs, x, 2)
	if len(vals) != 2 || final != Sat {
		t.Fatalf("capped enumeration: %d values, final=%v; want 2, sat", len(vals), final)
	}
	seen := map[uint64]bool{}
	for _, v := range vals {
		if v >= 3 || seen[v] {
			t.Fatalf("enumeration produced invalid or duplicate value %d", v)
		}
		seen[v] = true
	}
}

// TestRewriteEquivalence: specific shapes the rewriter targets keep
// their verdicts and models.
func TestRewriteEquivalence(t *testing.T) {
	b := expr.NewBuilder()
	x, y := b.Var("x", 8), b.Var("y", 8)
	c := func(v uint64) *expr.Term { return b.Const(v, 8) }
	cases := []struct {
		name string
		cs   []*expr.Term
	}{
		{"concretization-chain", []*expr.Term{b.Eq(x, c(5)), b.Ult(x, y), b.Eq(b.Add(x, y), c(20))}},
		{"bounds-collapse", []*expr.Term{b.Ule(c(7), x), b.Ule(x, c(7)), b.Ult(x, c(200))}},
		{"bounds-conflict", []*expr.Term{b.Ult(x, c(3)), b.Ult(c(5), x)}},
		{"signed-unsigned-mix", []*expr.Term{b.Slt(x, c(10)), b.Ult(c(2), x), b.Sle(c(0), x)}},
		{"conjunction-split", []*expr.Term{b.And(b.Ult(x, c(9)), b.Ult(y, c(9)))}},
		{"redundant-bounds", []*expr.Term{b.Ult(x, c(50)), b.Ult(x, c(60)), b.Ult(x, c(40)), b.Ult(c(10), x)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := New(0)
			opt.Builder = b
			opt.Opts = DefaultOptions()
			diffOne(t, b, opt, tc.cs)
		})
	}
}

func mustSat(t *testing.T, s *Solver, cs []*expr.Term) (Result, expr.Assignment) {
	t.Helper()
	res, m, err := s.Check(cs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res != Sat {
		t.Fatalf("got %v, want sat", res)
	}
	for _, c := range cs {
		if expr.Eval(c, m) != 1 {
			t.Fatalf("model %v does not satisfy %v", m, c)
		}
	}
	return res, m
}

func mustUnsat(t *testing.T, s *Solver, cs []*expr.Term) {
	t.Helper()
	res, _, err := s.Check(cs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res != Unsat {
		t.Fatalf("got %v, want unsat", res)
	}
}

// TestStatsAdd: the field-wise merge used by core's parallel report.
func TestStatsAdd(t *testing.T) {
	a := Stats{Queries: 1, SatAnswers: 2, UnsatAnswers: 3, CacheHits: 4, Conflicts: 5,
		Propagations: 6, Sliced: 7, ModelHits: 8, UnsatCoreHits: 9, Rewrites: 10,
		IncrementalReuses: 11, WallNS: 12}
	b := a
	b.Add(a)
	want := fmt.Sprintf("%+v", Stats{Queries: 2, SatAnswers: 4, UnsatAnswers: 6, CacheHits: 8,
		Conflicts: 10, Propagations: 12, Sliced: 14, ModelHits: 16, UnsatCoreHits: 18,
		Rewrites: 20, IncrementalReuses: 22, WallNS: 24})
	if got := fmt.Sprintf("%+v", b); got != want {
		t.Fatalf("Add: got %s, want %s", got, want)
	}
}
