package solver

// Options selects the stages of the query-optimization stack a Solver
// runs in front of bit-blasting. The zero value disables every stage,
// which reproduces plain whole-query blasting — the reference oracle
// the differential tests compare against, and the behavior of a
// zero-value Solver.
//
// Every stage is equivalence-preserving: for any constraint set the
// verdict (Sat/Unsat) is identical with any combination of stages,
// and returned models satisfy every constraint. Only the effort spent
// (conflicts, propagations, wall time) and the particular model chosen
// may differ.
type Options struct {
	// Rewrite runs the canonicalizing preprocessing pass (conjunction
	// flattening, constraint-implied concretization, interval
	// tightening) before anything else. Requires Solver.Builder.
	Rewrite bool

	// Slicing partitions each conjunction into connected components of
	// constraints linked by shared variables (union-find over var-sets)
	// and decides each component independently, so the verdict cache
	// hits across branches instead of only across identical paths.
	Slicing bool

	// ModelReuse answers Sat by replaying a recently found model that
	// already satisfies the query, and Unsat when a remembered unsat
	// core is a subset of the query, skipping SAT entirely.
	ModelReuse bool

	// Incremental solves through a persistent assumption-based SAT
	// context that retains learned clauses and the blaster's gate cache
	// across queries on the same path. Requires Solver.Builder.
	Incremental bool
}

// DefaultOptions enables the full optimization stack.
func DefaultOptions() Options {
	return Options{Rewrite: true, Slicing: true, ModelReuse: true, Incremental: true}
}
