package solver

import "hardsnap/internal/expr"

// Preprocessing limits: rewriteRounds bounds the
// concretize/bounds fixpoint, maxRewriteTerms skips the quadratic
// substitution pass on unusually large conjunctions.
const (
	rewriteRounds   = 3
	maxRewriteTerms = 128
)

// rewrite runs the canonicalizing preprocessing pass before slicing
// and blasting: conjunction flattening, constraint-implied
// concretization (an equality `t = c` in the set licenses substituting
// c for t everywhere else), and interval tightening over constant
// bounds on shared terms. Every step preserves the conjunction's
// models — the variable set is unchanged and the rewritten conjunction
// is logically equivalent — so verdicts and model validity are
// unaffected; only solving effort changes.
//
// It returns the simplified set, Unsat when preprocessing alone refuted
// the query (Result zero value otherwise), and whether anything
// changed.
func (s *Solver) rewrite(constraints []*expr.Term) ([]*expr.Term, Result, bool) {
	cs, unsat, changed := s.flatten(constraints)
	if unsat {
		return nil, Unsat, true
	}
	for round := 0; round < rewriteRounds; round++ {
		out, uns, ch1 := s.concretizePass(cs)
		if uns {
			return nil, Unsat, true
		}
		out, uns, ch2 := s.boundsPass(out)
		if uns {
			return nil, Unsat, true
		}
		if !ch1 && !ch2 {
			break
		}
		changed = true
		out, uns, _ = s.flatten(out)
		if uns {
			return nil, Unsat, true
		}
		cs = out
	}
	return cs, 0, changed
}

// flatten expands width-1 conjunctions into their conjuncts (each
// conjunct usually touches fewer variables, which feeds slicing),
// drops constant-true and duplicate constraints, and detects
// constant-false.
func (s *Solver) flatten(cs []*expr.Term) (out []*expr.Term, unsat, changed bool) {
	out = make([]*expr.Term, 0, len(cs))
	seen := make(map[*expr.Term]bool, len(cs))
	var add func(t *expr.Term)
	add = func(t *expr.Term) {
		if unsat {
			return
		}
		if v, ok := t.Const(); ok {
			if v == 0 {
				unsat = true
			} else {
				changed = true // vacuous constraint dropped
			}
			return
		}
		if t.Op() == expr.OpAnd && t.Width() == 1 {
			changed = true
			s.Stats.Rewrites++
			add(t.Args()[0])
			add(t.Args()[1])
			return
		}
		if seen[t] {
			changed = true
			return
		}
		seen[t] = true
		out = append(out, t)
	}
	for _, t := range cs {
		add(t)
	}
	return out, unsat, changed
}

// concretizePass applies constraint-implied concretization: for each
// defining equality `t = c` (non-constant term, constant right-hand
// side — the Builder's canonical orientation), every other constraint
// has t replaced by c. The defining equality itself is kept, so the
// conjunction stays equivalent and no variable disappears from the
// query.
func (s *Solver) concretizePass(cs []*expr.Term) (out []*expr.Term, unsat, changed bool) {
	if len(cs) < 2 || len(cs) > maxRewriteTerms {
		return cs, false, false
	}
	type def struct {
		idx int
		lhs *expr.Term
		c   *expr.Term
	}
	var defs []def
	for i, t := range cs {
		if t.Op() == expr.OpEq {
			args := t.Args()
			if args[1].IsConst() && !args[0].IsConst() {
				defs = append(defs, def{i, args[0], args[1]})
			}
		}
	}
	if len(defs) == 0 {
		return cs, false, false
	}
	out = append([]*expr.Term(nil), cs...)
	for _, d := range defs {
		lhsVars := s.varSet(d.lhs)
		for i, t := range out {
			if i == d.idx || !varsOverlap(lhsVars, s.varSet(t)) {
				continue
			}
			nt := expr.Replace(s.Builder, t, d.lhs, d.c)
			if nt != t {
				out[i] = nt
				changed = true
				s.Stats.Rewrites++
			}
		}
	}
	for _, t := range out {
		if v, ok := t.Const(); ok && v == 0 {
			return nil, true, true
		}
	}
	return out, false, changed
}

// varsOverlap reports whether two name-sorted variable sets intersect.
func varsOverlap(a, b []*expr.Term) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i].Name() < b[j].Name():
			i++
		default:
			j++
		}
	}
	return false
}

// Bound classification for the interval-tightening pass. A "pure
// bound" compares a non-constant term against a constant; chains of
// such bounds on the same term collapse to their tightest
// representatives, pin the term outright, or refute the query.
type boundKind int

const (
	boundNone  boundKind = iota
	boundEq              // x = c
	boundUltUB           // x <  c (unsigned upper)
	boundUltLB           // c <  x (unsigned lower)
	boundUleUB           // x <= c
	boundUleLB           // c <= x
	boundSltUB           // x <  c (signed upper)
	boundSltLB           // c <  x (signed lower)
	boundSleUB           // x <= c
	boundSleLB           // c <= x
)

func classifyBound(t *expr.Term) (*expr.Term, uint64, boundKind) {
	args := t.Args()
	pick := func(ubKind, lbKind boundKind) (*expr.Term, uint64, boundKind) {
		if args[1].IsConst() && !args[0].IsConst() {
			v, _ := args[1].Const()
			return args[0], v, ubKind
		}
		if args[0].IsConst() && !args[1].IsConst() {
			v, _ := args[0].Const()
			return args[1], v, lbKind
		}
		return nil, 0, boundNone
	}
	switch t.Op() {
	case expr.OpEq:
		if args[1].IsConst() && !args[0].IsConst() {
			v, _ := args[1].Const()
			return args[0], v, boundEq
		}
	case expr.OpUlt:
		return pick(boundUltUB, boundUltLB)
	case expr.OpUle:
		return pick(boundUleUB, boundUleLB)
	case expr.OpSlt:
		return pick(boundSltUB, boundSltLB)
	case expr.OpSle:
		return pick(boundSleUB, boundSleLB)
	}
	return nil, 0, boundNone
}

func minSigned(w uint) int64 { return int64(expr.SignExtend(1<<(w-1), w)) }
func maxSigned(w uint) int64 { return int64(expr.Mask(w) >> 1) }

// boundInfo accumulates the unsigned and signed interval of one term
// together with the witness constraints that set the tightest bounds.
type boundInfo struct {
	x        *expr.Term
	w        uint
	lo, hi   uint64
	slo, shi int64
	loC, hiC *expr.Term // tightest unsigned witnesses
	sloC     *expr.Term // tightest signed witnesses
	shiC     *expr.Term
	pin      *expr.Term // explicit Eq constraint, if any
	pinVal   uint64
	bounds   []*expr.Term // all pure-bound constraints on x, in order
}

// boundsPass tightens Ult/Slt/Ule/Sle chains: per term it keeps only
// the tightest lower and upper bound of each signedness (weaker bounds
// are implied and dropped), replaces an interval that collapses to a
// single value with an equality, and refutes empty intervals. Dropped
// constraints are always implied by the kept ones, so the conjunction
// stays equivalent.
func (s *Solver) boundsPass(cs []*expr.Term) ([]*expr.Term, bool, bool) {
	if len(cs) < 2 {
		return cs, false, false
	}
	info := make(map[*expr.Term]*boundInfo)
	var order []*boundInfo
	get := func(x *expr.Term) *boundInfo {
		bi, ok := info[x]
		if !ok {
			w := x.Width()
			bi = &boundInfo{
				x: x, w: w,
				lo: 0, hi: expr.Mask(w),
				slo: minSigned(w), shi: maxSigned(w),
			}
			info[x] = bi
			order = append(order, bi)
		}
		return bi
	}
	for _, t := range cs {
		x, c, kind := classifyBound(t)
		if kind == boundNone {
			continue
		}
		bi := get(x)
		sc := int64(expr.SignExtend(c, bi.w))
		// Witnesses are the first constraint achieving each strictly
		// tightest bound; equal or weaker bounds are implied by the
		// witness (or, at the trivial initial bound, vacuous) and drop.
		setLo := func(v uint64) {
			if v > bi.lo {
				bi.lo, bi.loC = v, t
			}
		}
		setHi := func(v uint64) {
			if v < bi.hi {
				bi.hi, bi.hiC = v, t
			}
		}
		setSlo := func(v int64) {
			if v > bi.slo {
				bi.slo, bi.sloC = v, t
			}
		}
		setShi := func(v int64) {
			if v < bi.shi {
				bi.shi, bi.shiC = v, t
			}
		}
		switch kind {
		case boundEq:
			if bi.pin != nil && bi.pinVal != c {
				return nil, true, true
			}
			bi.pin, bi.pinVal = t, c
			// Fold the pin into both intervals so conflicts with
			// bounds surface as an empty interval.
			if c > bi.lo {
				bi.lo = c
			}
			if c < bi.hi {
				bi.hi = c
			}
			if sc > bi.slo {
				bi.slo = sc
			}
			if sc < bi.shi {
				bi.shi = sc
			}
			continue
		case boundUltUB: // x < c; c >= 1 or the builder folded it
			bi.bounds = append(bi.bounds, t)
			setHi(c - 1)
		case boundUltLB: // c < x; c < max or the builder folded it
			bi.bounds = append(bi.bounds, t)
			setLo(c + 1)
		case boundUleUB:
			bi.bounds = append(bi.bounds, t)
			setHi(c)
		case boundUleLB:
			bi.bounds = append(bi.bounds, t)
			setLo(c)
		case boundSltUB: // x <s c
			if sc == minSigned(bi.w) {
				return nil, true, true // x < min is unsatisfiable
			}
			bi.bounds = append(bi.bounds, t)
			setShi(sc - 1)
		case boundSltLB: // c <s x
			if sc == maxSigned(bi.w) {
				return nil, true, true
			}
			bi.bounds = append(bi.bounds, t)
			setSlo(sc + 1)
		case boundSleUB:
			bi.bounds = append(bi.bounds, t)
			setShi(sc)
		case boundSleLB:
			bi.bounds = append(bi.bounds, t)
			setSlo(sc)
		}
	}
	drop := make(map[*expr.Term]bool)
	replace := make(map[*expr.Term]*expr.Term)
	for _, bi := range order {
		if bi.lo > bi.hi || bi.slo > bi.shi {
			return nil, true, true
		}
		// Cross-domain consistency of a collapsed interval.
		if bi.lo == bi.hi {
			sv := int64(expr.SignExtend(bi.lo, bi.w))
			if sv < bi.slo || sv > bi.shi {
				return nil, true, true
			}
		}
		if bi.slo == bi.shi {
			v := uint64(bi.slo) & expr.Mask(bi.w)
			if v < bi.lo || v > bi.hi {
				return nil, true, true
			}
		}
		pinned := bi.pin != nil
		var v uint64
		switch {
		case bi.pin != nil:
			v = bi.pinVal
		case bi.lo == bi.hi:
			pinned, v = true, bi.lo
		case bi.slo == bi.shi:
			pinned, v = true, uint64(bi.slo)&expr.Mask(bi.w)
		}
		if pinned {
			// Every pure bound on x is implied by x = v (the interval
			// checks above established consistency); the pin — the
			// explicit Eq, or a synthesized one in place of the first
			// bound — carries the constraint.
			for _, t := range bi.bounds {
				drop[t] = true
			}
			if bi.pin == nil && len(bi.bounds) > 0 {
				first := bi.bounds[0]
				delete(drop, first)
				replace[first] = s.Builder.Eq(bi.x, s.Builder.Const(v, bi.w))
			}
			continue
		}
		for _, t := range bi.bounds {
			if t != bi.loC && t != bi.hiC && t != bi.sloC && t != bi.shiC {
				drop[t] = true
			}
		}
	}
	if len(drop) == 0 && len(replace) == 0 {
		return cs, false, false
	}
	out := make([]*expr.Term, 0, len(cs))
	for _, t := range cs {
		if r, ok := replace[t]; ok {
			out = append(out, r)
			s.Stats.Rewrites++
			continue
		}
		if drop[t] {
			s.Stats.Rewrites++
			continue
		}
		out = append(out, t)
	}
	return out, false, true
}
