// Package solver implements a bitvector constraint solver for the
// QF_BV fragment produced by the symbolic executor. Terms are
// bit-blasted (Tseitin transformation) into CNF and decided by an
// embedded CDCL SAT solver with two-watched-literal propagation,
// activity-based decision heuristics, first-UIP clause learning and
// geometric restarts.
package solver

// A literal encodes a variable and sign: lit = 2*var + (1 if negated).
// Variable 0 is reserved as the constant TRUE (asserted by a unit
// clause), so lit 0 means "true" and lit 1 means "false".
type lit int32

func mkLit(v int32, neg bool) lit {
	l := lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) not() lit     { return l ^ 1 }
func (l lit) v() int32     { return int32(l >> 1) }
func (l lit) sign() bool   { return l&1 != 0 } // true = negated
func (l lit) index() int32 { return int32(l) }

const (
	litTrue  lit = 0
	litFalse lit = 1
)

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []lit
	learned bool
	act     float64
}

type watcher struct {
	c       *clause
	blocker lit
}

// sat is the CDCL core.
type sat struct {
	clauses  []*clause
	learned  []*clause
	watches  [][]watcher // indexed by lit
	assigns  []lbool     // indexed by var
	level    []int32     // decision level per var
	reason   []*clause   // antecedent clause per var
	activity []float64
	polarity []bool // saved phase
	trail    []lit
	trailLim []int32
	qhead    int
	varInc   float64
	claInc   float64
	order    *varHeap
	ok       bool

	conflicts    int64
	maxConflicts int64
	propagations int64

	seen       []bool
	analyzeTmp []lit
}

func newSAT() *sat {
	s := &sat{
		varInc:       1,
		claInc:       1,
		ok:           true,
		maxConflicts: -1,
	}
	s.order = &varHeap{s: s}
	// Reserve var 0 = TRUE.
	v := s.newVar()
	_ = v
	s.addClause([]lit{litTrue})
	return s
}

func (s *sat) newVar() int32 {
	v := int32(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true) // default phase: false
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

func (s *sat) value(l lit) lbool {
	v := s.assigns[l.v()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return v.neg()
	}
	return v
}

func (s *sat) decisionLevel() int32 { return int32(len(s.trailLim)) }

// addClause adds a problem clause, simplifying against top-level
// assignments. Returns false if the formula became unsatisfiable.
func (s *sat) addClause(lits []lit) bool {
	if !s.ok {
		return false
	}
	// Simplify: remove duplicate/false lits; detect tautology/true lits.
	out := lits[:0:0]
	seenLit := make(map[lit]bool, len(lits))
	for _, l := range lits {
		switch {
		case s.value(l) == lTrue && s.level[l.v()] == 0:
			return true // clause satisfied at top level
		case s.value(l) == lFalse && s.level[l.v()] == 0:
			continue // drop false literal
		case seenLit[l.not()]:
			return true // tautology
		case seenLit[l]:
			continue
		}
		seenLit[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *sat) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.not().index()] = append(s.watches[l0.not().index()], watcher{c: c, blocker: l1})
	s.watches[l1.not().index()] = append(s.watches[l1.not().index()], watcher{c: c, blocker: l0})
}

func (s *sat) uncheckedEnqueue(l lit, from *clause) {
	v := l.v()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause
// or nil.
func (s *sat) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p.index()]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so that the false literal is lits[1].
			if c.lits[0] == p.not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].not().index()
					s.watches[nl] = append(s.watches[nl], watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.value(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p.index()] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze computes a 1UIP learned clause from the conflict and returns
// it together with the backjump level.
func (s *sat) analyze(confl *clause) ([]lit, int32) {
	learnt := s.analyzeTmp[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	var p lit = -1
	counter := 0
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.v()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from trail.
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.v()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.v()]
	}
	learnt[0] = p.not()

	// Backjump level = max level among learnt[1:].
	bt := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].v()] > s.level[learnt[maxI].v()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].v()]
	}
	for _, l := range learnt {
		s.seen[l.v()] = false
	}
	s.analyzeTmp = learnt
	out := make([]lit, len(learnt))
	copy(out, learnt)
	return out, bt
}

func (s *sat) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *sat) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

func (s *sat) cancelUntil(level int32) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].v()
		s.polarity[v] = s.assigns[v] == lFalse
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *sat) pickBranchVar() int32 {
	for s.order.size() > 0 {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

func (s *sat) reduceDB() {
	if len(s.learned) < 4000 {
		return
	}
	// Drop the lower-activity half of learned clauses that are not
	// reasons for current assignments.
	half := len(s.learned) / 2
	// Simple selection: sort by activity (insertion into buckets is
	// overkill; use a partial selection).
	sortClausesByActivity(s.learned)
	kept := s.learned[:0]
	removed := 0
	for i, c := range s.learned {
		if removed < half && len(c.lits) > 2 && !s.isReason(c) && i < half {
			s.detach(c)
			removed++
			continue
		}
		kept = append(kept, c)
	}
	s.learned = kept
}

func (s *sat) isReason(c *clause) bool {
	return len(c.lits) > 0 && s.assigns[c.lits[0].v()] != lUndef && s.reason[c.lits[0].v()] == c
}

func (s *sat) detach(c *clause) {
	for _, l := range []lit{c.lits[0], c.lits[1]} {
		ws := s.watches[l.not().index()]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l.not().index()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func sortClausesByActivity(cs []*clause) {
	// Insertion-free: simple quicksort via sort-like shuffles would pull
	// in sort pkg; keep it simple and allocation-free.
	quickSortClauses(cs, 0, len(cs)-1)
}

func quickSortClauses(cs []*clause, lo, hi int) {
	for lo < hi {
		p := cs[(lo+hi)/2].act
		i, j := lo, hi
		for i <= j {
			for cs[i].act < p {
				i++
			}
			for cs[j].act > p {
				j--
			}
			if i <= j {
				cs[i], cs[j] = cs[j], cs[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortClauses(cs, lo, j)
			lo = i
		} else {
			quickSortClauses(cs, i, hi)
			hi = j
		}
	}
}

type satResult int8

const (
	satSat satResult = iota + 1
	satUnsat
	satUnknown
)

// solve runs the CDCL loop. maxConflicts < 0 means unbounded.
func (s *sat) solve() satResult {
	return s.solveAssuming(nil)
}

// solveAssuming runs the CDCL loop with the given literals as
// assumptions: they are forced as the first decisions (MiniSat-style),
// so satUnsat means "unsatisfiable under the assumptions" while the
// underlying formula stays intact and reusable. Learned clauses derived
// under assumptions mention the assumption literals negated and remain
// globally valid, which is what makes the incremental per-path context
// sound across queries. The caller must cancelUntil(0) afterwards to
// retract the assumptions (and should extract any model first).
func (s *sat) solveAssuming(assumps []lit) satResult {
	if !s.ok {
		return satUnsat
	}
	restartLimit := int64(100)
	conflictsAtRestart := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsAtRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return satUnsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true, act: s.claInc}
				s.learned = append(s.learned, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if s.maxConflicts >= 0 && s.conflicts >= s.maxConflicts {
				return satUnknown
			}
			continue
		}
		if conflictsAtRestart >= restartLimit {
			conflictsAtRestart = 0
			restartLimit = restartLimit * 3 / 2
			// Restarting retracts the assumptions too; the decision
			// loop below re-asserts them in order.
			s.cancelUntil(0)
			s.reduceDB()
			continue
		}
		if int(s.decisionLevel()) < len(assumps) {
			p := assumps[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy decision level so the
				// remaining assumptions keep their positions.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				// Contradicts the formula plus earlier assumptions.
				return satUnsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.uncheckedEnqueue(p, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return satSat
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(mkLit(v, s.polarity[v]), nil)
	}
}

// varHeap is a max-heap over variable activity.
type varHeap struct {
	s       *sat
	heap    []int32
	indices []int32 // var -> heap position + 1 (0 = absent)
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(a, b int32) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) insert(v int32) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap))
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int32) {
	if int(v) < len(h.indices) && h.indices[v] != 0 {
		h.up(int(h.indices[v] - 1))
	}
}

func (h *varHeap) removeMax() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = int32(i + 1)
		i = p
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = int32(i + 1)
		i = c
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}
