package solver

import (
	"bytes"
	"crypto/sha256"
	"sort"
	"sync"
	"sync/atomic"

	"hardsnap/internal/expr"
)

// cacheShards is the number of independently locked result shards.
// Striping by key byte keeps concurrent workers from serializing on
// one mutex when they consult the shared memo table.
const cacheShards = 16

// DefaultCacheCapacity bounds a NewCache(0) cache. Each entry holds a
// 32-byte key plus a small model map, so the default costs well under
// a few MiB even when full.
const DefaultCacheCapacity = 1 << 14

// CacheKey is the canonical digest of a path-condition set: the
// SHA-256 of the sorted, deduplicated structural digests of the
// constraint terms (constant-true terms removed). Two constraint
// slices that denote the same set — regardless of order, duplicates,
// or which Builder interned them — map to the same key.
type CacheKey [32]byte

// Cache memoizes satisfiability verdicts (and models for Sat) across
// solvers. Sibling states forked from the same branch re-issue
// identical feasibility queries; with a shared Cache each such query
// is paid once per exploration run instead of once per state. All
// methods are safe for concurrent use.
type Cache struct {
	capacity int
	shards   [cacheShards]cacheShard

	// digests memoizes per-term structural digests. Terms are
	// immutable and interned, so a pointer key is stable; racing
	// computations produce identical values.
	digests sync.Map // map[*expr.Term][32]byte

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	stores    atomic.Int64
	imported  atomic.Int64

	// logMu guards the fabric changelog of locally discovered entries
	// (see wire.go).
	logMu sync.Mutex
	log   []WireEntry
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[CacheKey]cacheEntry
	order   []CacheKey // insertion order, for FIFO eviction
}

type cacheEntry struct {
	res   Result
	model expr.Assignment
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
	// Imported counts entries adopted from the distributed fabric
	// (zero outside distributed runs); Published counts locally
	// discovered entries available to the fabric changelog.
	Imported  int64
	Published int64
}

// Add accumulates s into the receiver (per-node aggregation in
// distributed reports).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Imported += o.Imported
	s.Published += o.Published
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache returns a Cache bounded to roughly capacity entries
// (DefaultCacheCapacity if capacity <= 0). Eviction is FIFO per shard.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	c := &Cache{capacity: capacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[CacheKey]cacheEntry)
	}
	return c
}

// Stats returns a consistent-enough snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	var entries int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	c.logMu.Lock()
	published := int64(len(c.log))
	c.logMu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Imported:  c.imported.Load(),
		Published: published,
	}
}

// Key computes the canonical digest for a constraint set.
// Constant-true terms are dropped so that adding a vacuous constraint
// does not split the cache line for an otherwise identical set.
func (c *Cache) Key(constraints []*expr.Term) CacheKey {
	ds := make([][32]byte, 0, len(constraints))
	for _, t := range constraints {
		if v, ok := t.Const(); ok && v != 0 {
			continue
		}
		ds = append(ds, c.termDigest(t))
	}
	sort.Slice(ds, func(i, j int) bool {
		return bytes.Compare(ds[i][:], ds[j][:]) < 0
	})
	h := sha256.New()
	var prev [32]byte
	for i, d := range ds {
		if i > 0 && d == prev {
			continue
		}
		h.Write(d[:])
		prev = d
	}
	var k CacheKey
	copy(k[:], h.Sum(nil))
	return k
}

// termDigest returns the structural SHA-256 of t, memoized per term.
func (c *Cache) termDigest(t *expr.Term) [32]byte {
	if d, ok := c.digests.Load(t); ok {
		return d.([32]byte)
	}
	buf := make([]byte, 0, 64)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	put(uint64(t.Op()))
	put(uint64(t.Width()))
	put(uint64(t.ExtractLow()))
	if v, ok := t.Const(); ok {
		put(v)
	}
	if name := t.Name(); name != "" {
		buf = append(buf, name...)
		buf = append(buf, 0)
	}
	for _, a := range t.Args() {
		d := c.termDigest(a)
		buf = append(buf, d[:]...)
	}
	d := sha256.Sum256(buf)
	c.digests.Store(t, d)
	return d
}

// Lookup returns the memoized verdict for key, if any. Sat hits return
// a fresh copy of the stored model so callers may keep it without
// aliasing the cache.
func (c *Cache) Lookup(key CacheKey) (Result, expr.Assignment, bool) {
	s := &c.shards[int(key[0])%cacheShards]
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Unknown, nil, false
	}
	c.hits.Add(1)
	var model expr.Assignment
	if e.model != nil {
		model = make(expr.Assignment, len(e.model))
		for k, v := range e.model {
			model[k] = v
		}
	}
	return e.res, model, true
}

// Store memoizes a definite verdict. Unknown (budget-exhausted)
// results are never cached: a later query with a larger budget must be
// allowed to try again. The model is copied on the way in. Locally
// stored entries enter the fabric changelog (wire.go); use Import for
// entries that arrived from the fabric.
func (c *Cache) Store(key CacheKey, res Result, model expr.Assignment) {
	c.store(key, res, model, true)
}

// store inserts an entry, returning whether it was newly inserted.
// logIt routes locally discovered entries into the fabric changelog.
func (c *Cache) store(key CacheKey, res Result, model expr.Assignment, logIt bool) bool {
	if res != Sat && res != Unsat {
		return false
	}
	var stored expr.Assignment
	if model != nil {
		stored = make(expr.Assignment, len(model))
		for k, v := range model {
			stored[k] = v
		}
	}
	s := &c.shards[int(key[0])%cacheShards]
	perShard := c.capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	s.mu.Lock()
	if _, ok := s.entries[key]; ok {
		s.mu.Unlock()
		return false
	}
	for len(s.entries) >= perShard && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		if _, ok := s.entries[victim]; ok {
			delete(s.entries, victim)
			c.evictions.Add(1)
		}
	}
	s.entries[key] = cacheEntry{res: res, model: stored}
	s.order = append(s.order, key)
	s.mu.Unlock()
	c.stores.Add(1)
	if logIt {
		c.logEntry(key, res, stored)
	}
	return true
}
