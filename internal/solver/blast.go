package solver

import (
	"fmt"

	"hardsnap/internal/expr"
)

// blaster lowers bitvector terms to CNF over a sat instance. Each term
// maps to a slice of literals, least-significant bit first. Constant
// bits are represented by litTrue/litFalse, so downstream gates can
// simplify on the fly.
type blaster struct {
	s     *sat
	cache map[*expr.Term][]lit
	vars  map[string][]lit // bitvector variable name -> bit literals
}

func newBlaster(s *sat) *blaster {
	return &blaster{
		s:     s,
		cache: make(map[*expr.Term][]lit),
		vars:  make(map[string][]lit),
	}
}

func (b *blaster) freshLit() lit { return mkLit(b.s.newVar(), false) }

func isConstLit(l lit) (bool, bool) {
	switch l {
	case litTrue:
		return true, true
	case litFalse:
		return false, true
	}
	return false, false
}

// gateAnd returns a literal equivalent to x AND y.
func (b *blaster) gateAnd(x, y lit) lit {
	if v, ok := isConstLit(x); ok {
		if v {
			return y
		}
		return litFalse
	}
	if v, ok := isConstLit(y); ok {
		if v {
			return x
		}
		return litFalse
	}
	if x == y {
		return x
	}
	if x == y.not() {
		return litFalse
	}
	o := b.freshLit()
	b.s.addClause([]lit{x.not(), y.not(), o})
	b.s.addClause([]lit{x, o.not()})
	b.s.addClause([]lit{y, o.not()})
	return o
}

// gateOr returns a literal equivalent to x OR y.
func (b *blaster) gateOr(x, y lit) lit {
	return b.gateAnd(x.not(), y.not()).not()
}

// gateXor returns a literal equivalent to x XOR y.
func (b *blaster) gateXor(x, y lit) lit {
	if v, ok := isConstLit(x); ok {
		if v {
			return y.not()
		}
		return y
	}
	if v, ok := isConstLit(y); ok {
		if v {
			return x.not()
		}
		return x
	}
	if x == y {
		return litFalse
	}
	if x == y.not() {
		return litTrue
	}
	o := b.freshLit()
	b.s.addClause([]lit{x.not(), y.not(), o.not()})
	b.s.addClause([]lit{x, y, o.not()})
	b.s.addClause([]lit{x.not(), y, o})
	b.s.addClause([]lit{x, y.not(), o})
	return o
}

// gateMux returns (sel ? x : y).
func (b *blaster) gateMux(sel, x, y lit) lit {
	if v, ok := isConstLit(sel); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.gateOr(b.gateAnd(sel, x), b.gateAnd(sel.not(), y))
}

// fullAdder returns (sum, carryOut) of x + y + cin.
func (b *blaster) fullAdder(x, y, cin lit) (lit, lit) {
	sum := b.gateXor(b.gateXor(x, y), cin)
	carry := b.gateOr(b.gateAnd(x, y), b.gateAnd(cin, b.gateXor(x, y)))
	return sum, carry
}

func (b *blaster) adder(x, y []lit, cin lit) []lit {
	out := make([]lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negate(x []lit) []lit {
	inv := make([]lit, len(x))
	for i, l := range x {
		inv[i] = l.not()
	}
	one := make([]lit, len(x))
	for i := range one {
		one[i] = litFalse
	}
	if len(one) > 0 {
		one[0] = litTrue
	}
	return b.adder(inv, one, litFalse)
}

func constBits(v uint64, w int) []lit {
	out := make([]lit, w)
	for i := 0; i < w; i++ {
		if v&(1<<uint(i)) != 0 {
			out[i] = litTrue
		} else {
			out[i] = litFalse
		}
	}
	return out
}

// eqBits returns a literal that is true iff x == y bitwise.
func (b *blaster) eqBits(x, y []lit) lit {
	acc := litTrue
	for i := range x {
		acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).not())
	}
	return acc
}

// ultBits returns a literal that is true iff x < y unsigned.
func (b *blaster) ultBits(x, y []lit) lit {
	// Iterate from LSB: lt = (~x&y) | (eq & lt_prev)
	lt := litFalse
	for i := 0; i < len(x); i++ {
		xi, yi := x[i], y[i]
		eq := b.gateXor(xi, yi).not()
		lti := b.gateAnd(xi.not(), yi)
		lt = b.gateOr(lti, b.gateAnd(eq, lt))
	}
	return lt
}

// sltBits returns a literal that is true iff x < y signed.
func (b *blaster) sltBits(x, y []lit) lit {
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	// Flip sign bits and compare unsigned.
	x2 := append(append([]lit{}, x[:n-1]...), sx.not())
	y2 := append(append([]lit{}, y[:n-1]...), sy.not())
	return b.ultBits(x2, y2)
}

func (b *blaster) mux(sel lit, x, y []lit) []lit {
	out := make([]lit, len(x))
	for i := range x {
		out[i] = b.gateMux(sel, x[i], y[i])
	}
	return out
}

// shifter implements a barrel shifter. dir: 0 = shl, 1 = lshr, 2 = ashr.
func (b *blaster) shifter(x, amount []lit, dir int) []lit {
	w := len(x)
	cur := append([]lit{}, x...)
	fill := litFalse
	if dir == 2 {
		fill = x[w-1]
	}
	// Stage for each bit of the shift amount that matters.
	for stage := 0; (1<<uint(stage)) < w && stage < len(amount); stage++ {
		sh := 1 << uint(stage)
		shifted := make([]lit, w)
		for i := 0; i < w; i++ {
			var src lit
			switch dir {
			case 0: // left
				if i-sh >= 0 {
					src = cur[i-sh]
				} else {
					src = litFalse
				}
			default: // right
				if i+sh < w {
					src = cur[i+sh]
				} else {
					src = fill
				}
			}
			shifted[i] = b.gateMux(amount[stage], src, cur[i])
		}
		cur = shifted
	}
	// If any higher amount bit is set, the result saturates.
	over := litFalse
	for i := 0; i < len(amount); i++ {
		if 1<<uint(i) >= w {
			over = b.gateOr(over, amount[i])
		}
	}
	if over != litFalse {
		sat := make([]lit, w)
		for i := range sat {
			sat[i] = fill
		}
		cur = b.mux(over, sat, cur)
	}
	return cur
}

func (b *blaster) multiplier(x, y []lit) []lit {
	w := len(x)
	acc := constBits(0, w)
	for i := 0; i < w; i++ {
		// partial = (y[i] ? x << i : 0), accumulated into acc.
		part := make([]lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				part[j] = litFalse
			} else {
				part[j] = b.gateAnd(x[j-i], y[i])
			}
		}
		acc = b.adder(acc, part, litFalse)
	}
	return acc
}

// divider constrains fresh quotient/remainder vectors so that
// x = q*y + r with r < y (for y != 0), and SMT-LIB semantics for y == 0
// (q = all ones, r = x). Computation happens in 2w bits to avoid
// wrap-around aliasing.
func (b *blaster) divider(x, y []lit) (q, r []lit) {
	w := len(x)
	q = make([]lit, w)
	r = make([]lit, w)
	for i := 0; i < w; i++ {
		q[i] = b.freshLit()
		r[i] = b.freshLit()
	}
	zero := constBits(0, w)
	yIsZero := b.eqBits(y, zero)

	// Extended widths.
	ext := func(v []lit) []lit {
		out := make([]lit, 2*w)
		copy(out, v)
		for i := w; i < 2*w; i++ {
			out[i] = litFalse
		}
		return out
	}
	prod := b.multiplier2w(ext(q), ext(y))
	sum := b.adder(prod, ext(r), litFalse)
	eq := b.eqBits(sum, ext(x))
	rLtY := b.ultBits(r, y)
	qOnes := b.eqBits(q, constBits(expr.Mask(uint(w)), w))
	rIsX := b.eqBits(r, x)

	// yIsZero -> (qOnes && rIsX) ; !yIsZero -> (eq && rLtY)
	okZero := b.gateAnd(qOnes, rIsX)
	okDiv := b.gateAnd(eq, rLtY)
	cond := b.gateMux(yIsZero, okZero, okDiv)
	b.s.addClause([]lit{cond})
	return q, r
}

// multiplier2w multiplies two 2w-bit vectors but only needs the low 2w
// bits; inputs are zero-extended w-bit values so the product is exact.
func (b *blaster) multiplier2w(x, y []lit) []lit {
	return b.multiplier(x, y)
}

// blast returns the literal vector for term t.
func (b *blaster) blast(t *expr.Term) []lit {
	if r, ok := b.cache[t]; ok {
		return r
	}
	r := b.blastUncached(t)
	if len(r) != int(t.Width()) {
		panic(fmt.Sprintf("solver: blast width mismatch for %v: got %d want %d", t, len(r), t.Width()))
	}
	b.cache[t] = r
	return r
}

func (b *blaster) blastUncached(t *expr.Term) []lit {
	w := int(t.Width())
	args := t.Args()
	switch t.Op() {
	case expr.OpConst:
		v, _ := t.Const()
		return constBits(v, w)
	case expr.OpVar:
		if bits, ok := b.vars[t.Name()]; ok {
			return bits
		}
		bits := make([]lit, w)
		for i := range bits {
			bits[i] = b.freshLit()
		}
		b.vars[t.Name()] = bits
		return bits
	case expr.OpAdd:
		return b.adder(b.blast(args[0]), b.blast(args[1]), litFalse)
	case expr.OpSub:
		y := b.blast(args[1])
		inv := make([]lit, len(y))
		for i, l := range y {
			inv[i] = l.not()
		}
		return b.adder(b.blast(args[0]), inv, litTrue)
	case expr.OpMul:
		return b.multiplier(b.blast(args[0]), b.blast(args[1]))
	case expr.OpUDiv:
		q, _ := b.divider(b.blast(args[0]), b.blast(args[1]))
		return q
	case expr.OpURem:
		_, r := b.divider(b.blast(args[0]), b.blast(args[1]))
		return r
	case expr.OpAnd:
		x, y := b.blast(args[0]), b.blast(args[1])
		out := make([]lit, w)
		for i := range out {
			out[i] = b.gateAnd(x[i], y[i])
		}
		return out
	case expr.OpOr:
		x, y := b.blast(args[0]), b.blast(args[1])
		out := make([]lit, w)
		for i := range out {
			out[i] = b.gateOr(x[i], y[i])
		}
		return out
	case expr.OpXor:
		x, y := b.blast(args[0]), b.blast(args[1])
		out := make([]lit, w)
		for i := range out {
			out[i] = b.gateXor(x[i], y[i])
		}
		return out
	case expr.OpNot:
		x := b.blast(args[0])
		out := make([]lit, w)
		for i := range out {
			out[i] = x[i].not()
		}
		return out
	case expr.OpNeg:
		return b.negate(b.blast(args[0]))
	case expr.OpShl:
		return b.shifter(b.blast(args[0]), b.blast(args[1]), 0)
	case expr.OpLshr:
		return b.shifter(b.blast(args[0]), b.blast(args[1]), 1)
	case expr.OpAshr:
		return b.shifter(b.blast(args[0]), b.blast(args[1]), 2)
	case expr.OpEq:
		return []lit{b.eqBits(b.blast(args[0]), b.blast(args[1]))}
	case expr.OpNe:
		return []lit{b.eqBits(b.blast(args[0]), b.blast(args[1])).not()}
	case expr.OpUlt:
		return []lit{b.ultBits(b.blast(args[0]), b.blast(args[1]))}
	case expr.OpUle:
		return []lit{b.ultBits(b.blast(args[1]), b.blast(args[0])).not()}
	case expr.OpSlt:
		return []lit{b.sltBits(b.blast(args[0]), b.blast(args[1]))}
	case expr.OpSle:
		return []lit{b.sltBits(b.blast(args[1]), b.blast(args[0])).not()}
	case expr.OpConcat:
		hi, lo := b.blast(args[0]), b.blast(args[1])
		out := make([]lit, 0, w)
		out = append(out, lo...)
		out = append(out, hi...)
		return out
	case expr.OpExtract:
		x := b.blast(args[0])
		loBit := int(t.ExtractLow())
		out := make([]lit, w)
		copy(out, x[loBit:loBit+w])
		return out
	case expr.OpZExt:
		x := b.blast(args[0])
		out := make([]lit, w)
		copy(out, x)
		for i := len(x); i < w; i++ {
			out[i] = litFalse
		}
		return out
	case expr.OpSExt:
		x := b.blast(args[0])
		out := make([]lit, w)
		copy(out, x)
		sign := x[len(x)-1]
		for i := len(x); i < w; i++ {
			out[i] = sign
		}
		return out
	case expr.OpIte:
		sel := b.blast(args[0])[0]
		return b.mux(sel, b.blast(args[1]), b.blast(args[2]))
	}
	panic(fmt.Sprintf("solver: cannot blast op %v", t.Op()))
}

// assertTrue adds the constraint that width-1 term t is 1.
func (b *blaster) assertTrue(t *expr.Term) {
	if t.Width() != 1 {
		panic("solver: assertTrue on non-boolean term")
	}
	l := b.blast(t)[0]
	b.s.addClause([]lit{l})
}

// model extracts concrete values for all blasted variables from a
// satisfying assignment.
func (b *blaster) model() expr.Assignment {
	m := make(expr.Assignment, len(b.vars))
	for name, bits := range b.vars {
		var v uint64
		for i, l := range bits {
			if b.s.value(l) == lTrue {
				v |= 1 << uint(i)
			}
		}
		m[name] = v
	}
	return m
}
