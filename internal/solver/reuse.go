package solver

import "hardsnap/internal/expr"

// Counterexample/model-reuse bounds. The recent-model ring answers Sat
// by evaluation instead of solving; the unsat-core list answers Unsat
// when a remembered unsatisfiable set is a subset of the query (a
// superset of an unsatisfiable conjunction is unsatisfiable). Both are
// per-Solver and hold interned term pointers, so membership is pointer
// equality.
const (
	maxRecentModels = 8
	maxUnsatCores   = 64
	maxCoreSize     = 16
)

// tryRecentModels returns a cached model that satisfies every
// constraint, newest first. Any hit is a genuine model — validity is
// established by evaluation, not by provenance.
func (s *Solver) tryRecentModels(cs []*expr.Term) (expr.Assignment, bool) {
	for i := len(s.recent) - 1; i >= 0; i-- {
		m := s.recent[i]
		ok := true
		for _, c := range cs {
			if expr.Eval(c, m) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return m, true
		}
	}
	return nil, false
}

// rememberModel records a model for future reuse. The model is copied
// so later caller-side mutation cannot corrupt the ring.
func (s *Solver) rememberModel(m expr.Assignment) {
	if len(m) == 0 {
		return
	}
	cp := make(expr.Assignment, len(m))
	for k, v := range m {
		cp[k] = v
	}
	s.recent = append(s.recent, cp)
	if len(s.recent) > maxRecentModels {
		s.recent = s.recent[len(s.recent)-maxRecentModels:]
	}
}

// coveredByUnsatCore reports whether a remembered unsat core is a
// subset of cs (pointer identity on interned terms).
func (s *Solver) coveredByUnsatCore(cs []*expr.Term) bool {
	if len(s.cores) == 0 {
		return false
	}
	set := make(map[*expr.Term]bool, len(cs))
	for _, c := range cs {
		set[c] = true
	}
	for i := len(s.cores) - 1; i >= 0; i-- {
		sub := true
		for _, t := range s.cores[i] {
			if !set[t] {
				sub = false
				break
			}
		}
		if sub {
			return true
		}
	}
	return false
}

// rememberUnsatCore records an unsatisfiable constraint set. Large sets
// are skipped — they are unlikely to recur as subsets and make every
// subset check slower.
func (s *Solver) rememberUnsatCore(cs []*expr.Term) {
	if len(cs) == 0 || len(cs) > maxCoreSize {
		return
	}
	core := append([]*expr.Term(nil), cs...)
	s.cores = append(s.cores, core)
	if len(s.cores) > maxUnsatCores {
		s.cores = s.cores[len(s.cores)-maxUnsatCores:]
	}
}

// restrictModel projects m onto the variables of cs, defaulting
// missing variables to zero. Slice models must be restricted before
// they are merged: an incremental context's model also assigns
// variables of dormant constraints, and letting those leak across
// slices could overwrite another slice's assignment.
func (s *Solver) restrictModel(cs []*expr.Term, m expr.Assignment) expr.Assignment {
	out := make(expr.Assignment)
	for _, c := range cs {
		for _, v := range s.varSet(c) {
			if val, ok := m[v.Name()]; ok {
				out[v.Name()] = val
			} else {
				out[v.Name()] = 0
			}
		}
	}
	return out
}
