package solver

import (
	"errors"

	"hardsnap/internal/expr"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Sat Result = iota + 1
	Unsat
	Unknown
)

// String returns the lowercase name of the result.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	}
	return "invalid"
}

// ErrBudget is returned when the conflict budget is exhausted before a
// definite answer is reached.
var ErrBudget = errors.New("solver: conflict budget exhausted")

// Solver decides conjunctions of width-1 bitvector terms. The zero
// value is ready to use with an unlimited conflict budget.
type Solver struct {
	// MaxConflicts bounds the CDCL search; <= 0 means unlimited.
	MaxConflicts int64

	// Cache, when non-nil, memoizes definite verdicts across queries
	// (and, when shared, across solvers — see Cache). The Solver
	// itself remains single-goroutine; only the Cache is safe to
	// share.
	Cache *Cache

	// Stats accumulates across queries.
	Stats Stats
}

// Stats reports cumulative solver effort.
type Stats struct {
	Queries      int64
	SatAnswers   int64
	UnsatAnswers int64
	CacheHits    int64
	Conflicts    int64
	Propagations int64
}

// New returns a Solver with the given conflict budget (<= 0 for
// unlimited).
func New(maxConflicts int64) *Solver {
	return &Solver{MaxConflicts: maxConflicts}
}

// Check decides whether the conjunction of the given width-1 terms is
// satisfiable. On Sat it returns a model assigning every variable that
// occurs in the constraints. On Unknown it returns ErrBudget.
func (s *Solver) Check(constraints []*expr.Term) (Result, expr.Assignment, error) {
	s.Stats.Queries++

	// Fast path: all-constant constraints.
	allConst := true
	for _, c := range constraints {
		if c.Width() != 1 {
			return Unknown, nil, errors.New("solver: constraint is not boolean")
		}
		v, ok := c.Const()
		if !ok {
			allConst = false
			break
		}
		if v == 0 {
			s.Stats.UnsatAnswers++
			return Unsat, nil, nil
		}
	}
	if allConst {
		s.Stats.SatAnswers++
		return Sat, expr.Assignment{}, nil
	}

	var key CacheKey
	if s.Cache != nil {
		key = s.Cache.Key(constraints)
		if res, model, ok := s.Cache.Lookup(key); ok {
			s.Stats.CacheHits++
			switch res {
			case Sat:
				s.Stats.SatAnswers++
			case Unsat:
				s.Stats.UnsatAnswers++
			}
			return res, model, nil
		}
	}

	core := newSAT()
	if s.MaxConflicts > 0 {
		core.maxConflicts = s.MaxConflicts
	}
	bl := newBlaster(core)
	for _, c := range constraints {
		if v, ok := c.Const(); ok {
			if v == 0 {
				s.Stats.UnsatAnswers++
				if s.Cache != nil {
					s.Cache.Store(key, Unsat, nil)
				}
				return Unsat, nil, nil
			}
			continue
		}
		bl.assertTrue(c)
	}
	res := core.solve()
	s.Stats.Conflicts += core.conflicts
	s.Stats.Propagations += core.propagations
	switch res {
	case satSat:
		s.Stats.SatAnswers++
		model := bl.model()
		if s.Cache != nil {
			s.Cache.Store(key, Sat, model)
		}
		return Sat, model, nil
	case satUnsat:
		s.Stats.UnsatAnswers++
		if s.Cache != nil {
			s.Cache.Store(key, Unsat, nil)
		}
		return Unsat, nil, nil
	default:
		return Unknown, nil, ErrBudget
	}
}

// MustValue returns a concrete value for term t consistent with the
// constraints. It is used by the concretization policy. The boolean
// reports whether a value was found (false means the path is
// infeasible or the budget ran out).
func (s *Solver) MustValue(constraints []*expr.Term, t *expr.Term) (uint64, bool) {
	if v, ok := t.Const(); ok {
		return v, true
	}
	res, m, _ := s.Check(constraints)
	if res != Sat {
		return 0, false
	}
	return expr.Eval(t, m), true
}

// Values enumerates up to max distinct concrete values of t under the
// constraints, by iteratively blocking found values. It is the
// completeness-oriented concretization policy from the paper.
func (s *Solver) Values(b *expr.Builder, constraints []*expr.Term, t *expr.Term, max int) []uint64 {
	if v, ok := t.Const(); ok {
		return []uint64{v}
	}
	var out []uint64
	cs := append([]*expr.Term{}, constraints...)
	for len(out) < max {
		res, m, _ := s.Check(cs)
		if res != Sat {
			break
		}
		v := expr.Eval(t, m)
		out = append(out, v)
		cs = append(cs, b.Ne(t, b.Const(v, t.Width())))
	}
	return out
}
