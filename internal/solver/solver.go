package solver

import (
	"errors"
	"time"

	"hardsnap/internal/expr"
)

// Result is the outcome of a satisfiability query.
type Result int

// Query outcomes.
const (
	Sat Result = iota + 1
	Unsat
	Unknown
)

// String returns the lowercase name of the result.
func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	}
	return "invalid"
}

// ErrBudget is returned when the conflict budget is exhausted before a
// definite answer is reached.
var ErrBudget = errors.New("solver: conflict budget exhausted")

var errNotBoolean = errors.New("solver: constraint is not boolean")

// Solver decides conjunctions of width-1 bitvector terms. The zero
// value is ready to use with an unlimited conflict budget and plain
// whole-query solving; set Opts (and Builder) to enable the
// query-optimization stack.
type Solver struct {
	// MaxConflicts bounds the CDCL search per query; <= 0 means
	// unlimited.
	MaxConflicts int64

	// Cache, when non-nil, memoizes definite verdicts across queries
	// (and, when shared, across solvers — see Cache). The Solver
	// itself remains single-goroutine; only the Cache is safe to
	// share. With slicing enabled the cache is also consulted per
	// slice, so verdicts start hitting across branches that share
	// constraint subsets, not only across identical paths.
	Cache *Cache

	// Builder is the expression builder the constraints were created
	// with. It is required by the Rewrite stage (which constructs
	// terms) and used for O(1) memoized var-sets by slicing; the
	// Incremental stage also needs it as a signal that term pointers
	// are stable across queries.
	Builder *expr.Builder

	// Opts selects the optimization stages; the zero value is plain
	// whole-query blasting.
	Opts Options

	// Stats accumulates across queries.
	Stats Stats

	// Counterexample-reuse state (single-goroutine, like the Solver).
	recent []expr.Assignment
	cores  [][]*expr.Term

	// Incremental assumption-based context.
	ctx *incContext

	// Fallback var-set memo when no Builder is attached.
	localVars map[*expr.Term][]*expr.Term
}

// Stats reports cumulative solver effort and, per optimization stage,
// how often the stage shortcut fired.
type Stats struct {
	Queries      int64
	SatAnswers   int64
	UnsatAnswers int64
	CacheHits    int64
	Conflicts    int64
	Propagations int64

	// Sliced counts the independent components decided beyond the
	// first, summed over queries (0 when every query was one
	// component).
	Sliced int64
	// ModelHits counts Sat answers obtained by replaying a recent
	// model instead of solving.
	ModelHits int64
	// UnsatCoreHits counts Unsat answers obtained because a
	// remembered unsat core was a subset of the query.
	UnsatCoreHits int64
	// Rewrites counts constraints simplified, split, or dropped by the
	// canonicalizing rewrite pass.
	Rewrites int64
	// IncrementalReuses counts constraints that were already guarded
	// in the incremental context (no new blasting needed).
	IncrementalReuses int64
	// WallNS is wall-clock time spent inside Check, in nanoseconds.
	WallNS int64
}

// Add accumulates o into s (used to merge per-worker solver stats).
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.SatAnswers += o.SatAnswers
	s.UnsatAnswers += o.UnsatAnswers
	s.CacheHits += o.CacheHits
	s.Conflicts += o.Conflicts
	s.Propagations += o.Propagations
	s.Sliced += o.Sliced
	s.ModelHits += o.ModelHits
	s.UnsatCoreHits += o.UnsatCoreHits
	s.Rewrites += o.Rewrites
	s.IncrementalReuses += o.IncrementalReuses
	s.WallNS += o.WallNS
}

// New returns a Solver with the given conflict budget (<= 0 for
// unlimited).
func New(maxConflicts int64) *Solver {
	return &Solver{MaxConflicts: maxConflicts}
}

// Check decides whether the conjunction of the given width-1 terms is
// satisfiable. On Sat it returns a model assigning every variable that
// occurs in the constraints. On Unknown it returns ErrBudget.
//
// The query runs through the optimization pipeline selected by Opts:
// rewrite → slice → per-slice cache/model-reuse → (incremental) SAT.
// Every stage preserves verdicts, so enabling stages changes effort
// and possibly which model is returned, never satisfiability.
func (s *Solver) Check(constraints []*expr.Term) (Result, expr.Assignment, error) {
	start := time.Now()
	s.Stats.Queries++
	res, model, err := s.check(constraints)
	s.Stats.WallNS += time.Since(start).Nanoseconds()
	switch res {
	case Sat:
		s.Stats.SatAnswers++
	case Unsat:
		s.Stats.UnsatAnswers++
	}
	return res, model, err
}

func (s *Solver) check(constraints []*expr.Term) (Result, expr.Assignment, error) {
	// Fast path: all-constant constraints.
	allConst := true
	for _, c := range constraints {
		if c.Width() != 1 {
			return Unknown, nil, errNotBoolean
		}
		v, ok := c.Const()
		if !ok {
			allConst = false
			continue
		}
		if v == 0 {
			return Unsat, nil, nil
		}
	}
	if allConst {
		return Sat, expr.Assignment{}, nil
	}

	// Whole-query memo on the original constraint set.
	var key CacheKey
	haveKey := s.Cache != nil
	if haveKey {
		key = s.Cache.Key(constraints)
		if res, model, ok := s.Cache.Lookup(key); ok {
			s.Stats.CacheHits++
			return res, model, nil
		}
	}

	cs, changed := constraints, false
	if s.Opts.Rewrite && s.Builder != nil {
		var verdict Result
		cs, verdict, changed = s.rewrite(constraints)
		if verdict == Unsat {
			if haveKey {
				s.Cache.Store(key, Unsat, nil)
			}
			return Unsat, nil, nil
		}
		if len(cs) == 0 {
			model := expr.Assignment{}
			if haveKey {
				s.Cache.Store(key, Sat, model)
			}
			return Sat, model, nil
		}
	}

	var slices [][]*expr.Term
	if s.Opts.Slicing {
		slices = s.partition(cs)
		s.Stats.Sliced += int64(len(slices) - 1)
	} else {
		slices = [][]*expr.Term{cs}
	}
	// Per-slice verdicts are worth caching only when the slice key can
	// differ from the whole-query key (which already missed).
	subCache := haveKey && (changed || len(slices) > 1)

	model := expr.Assignment{}
	for _, sl := range slices {
		res, m, err := s.checkSlice(sl, subCache)
		if err != nil {
			return Unknown, nil, err
		}
		if res == Unsat {
			if haveKey {
				s.Cache.Store(key, Unsat, nil)
			}
			return Unsat, nil, nil
		}
		// Slices are variable-disjoint, so merging cannot clobber
		// (checkSlice restricts each model to its slice's variables).
		for k, v := range m {
			model[k] = v
		}
	}
	if haveKey {
		s.Cache.Store(key, Sat, model)
	}
	s.rememberModel(model)
	return Sat, model, nil
}

// checkSlice decides one independence slice: per-slice cache, then
// counterexample reuse, then SAT (incremental context or a fresh
// instance). Sat models are restricted to the slice's variables.
func (s *Solver) checkSlice(sl []*expr.Term, useCache bool) (Result, expr.Assignment, error) {
	var live []*expr.Term
	for _, c := range sl {
		if v, ok := c.Const(); ok {
			if v == 0 {
				return Unsat, nil, nil
			}
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return Sat, expr.Assignment{}, nil
	}

	var key CacheKey
	if useCache {
		key = s.Cache.Key(live)
		if res, model, ok := s.Cache.Lookup(key); ok {
			s.Stats.CacheHits++
			return res, model, nil
		}
	}

	if s.Opts.ModelReuse {
		if m, ok := s.tryRecentModels(live); ok {
			s.Stats.ModelHits++
			m = s.restrictModel(live, m)
			if useCache {
				s.Cache.Store(key, Sat, m)
			}
			return Sat, m, nil
		}
		if s.coveredByUnsatCore(live) {
			s.Stats.UnsatCoreHits++
			if useCache {
				s.Cache.Store(key, Unsat, nil)
			}
			return Unsat, nil, nil
		}
	}

	var res satResult
	var m expr.Assignment
	if s.Opts.Incremental && s.Builder != nil {
		res, m = s.solveIncremental(live)
	} else {
		res, m = s.solveFresh(live)
	}
	switch res {
	case satSat:
		m = s.restrictModel(live, m)
		if useCache {
			s.Cache.Store(key, Sat, m)
		}
		s.rememberModel(m)
		return Sat, m, nil
	case satUnsat:
		if useCache {
			s.Cache.Store(key, Unsat, nil)
		}
		s.rememberUnsatCore(live)
		return Unsat, nil, nil
	}
	return Unknown, nil, ErrBudget
}

// MustValue returns a concrete value for term t consistent with the
// constraints. It is used by the concretization policy. The boolean
// reports whether a value was found (false means the path is
// infeasible or the budget ran out).
func (s *Solver) MustValue(constraints []*expr.Term, t *expr.Term) (uint64, bool) {
	if v, ok := t.Const(); ok {
		return v, true
	}
	res, m, _ := s.Check(constraints)
	if res != Sat {
		return 0, false
	}
	return expr.Eval(t, m), true
}

// Values enumerates up to max distinct concrete values of t under the
// constraints, by iteratively blocking found values. It is the
// completeness-oriented concretization policy from the paper.
func (s *Solver) Values(b *expr.Builder, constraints []*expr.Term, t *expr.Term, max int) []uint64 {
	vals, _ := s.Enumerate(b, constraints, t, max)
	return vals
}

// Enumerate is Values with an explicit terminating verdict: Unsat when
// the value space was exhausted (the list is complete), Sat when the
// enumeration stopped at max (more values may exist), and Unknown when
// the conflict budget ran out. Callers use the verdict to tell "no
// value exists" apart from "the solver gave up", which Values conflates.
// Thanks to the incremental context, each blocking query re-uses all
// previously blasted constraints and only the newest blocking
// constraint is new work.
func (s *Solver) Enumerate(b *expr.Builder, constraints []*expr.Term, t *expr.Term, max int) ([]uint64, Result) {
	if v, ok := t.Const(); ok {
		return []uint64{v}, Sat
	}
	var out []uint64
	cs := append([]*expr.Term{}, constraints...)
	final := Sat
	for len(out) < max {
		res, m, _ := s.Check(cs)
		if res != Sat {
			final = res
			break
		}
		v := expr.Eval(t, m)
		out = append(out, v)
		cs = append(cs, b.Ne(t, b.Const(v, t.Width())))
	}
	return out, final
}
