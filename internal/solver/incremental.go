package solver

import "hardsnap/internal/expr"

// incContext is a persistent assumption-based solving context. Every
// distinct constraint term ever seen gets a guard literal g and one
// implication clause (¬g ∨ blast(c)); a query then assumes exactly the
// guards of its constraint set. Retraction is free — a constraint not
// assumed is simply dormant — so one context serves every query on a
// path (and, because supersets of earlier queries re-use all their
// guards, each branch step blasts only the new constraint). Learned
// clauses mention guards negated and stay globally valid, and the
// blaster's gate cache persists, which is where the bulk of the win
// over fresh per-query blasting comes from.
//
// Soundness of keeping everything: Tseitin gate clauses only define
// fresh variables and never constrain inputs on their own (the divider
// asserts only over its fresh quotient/remainder vector), so an
// unassumed constraint cannot restrict the search.
type incContext struct {
	core   *sat
	bl     *blaster
	guards map[*expr.Term]lit
}

// maxContextGuards bounds context growth; past it the context is
// rebuilt from scratch so a long-lived solver cannot accumulate
// unbounded clauses for constraints it will never see again.
const maxContextGuards = 2048

func (s *Solver) context() *incContext {
	if s.ctx == nil || !s.ctx.core.ok || len(s.ctx.guards) > maxContextGuards {
		core := newSAT()
		s.ctx = &incContext{core: core, bl: newBlaster(core), guards: make(map[*expr.Term]lit)}
	}
	return s.ctx
}

// solveIncremental decides the conjunction in the persistent context.
// The returned model (on satSat) covers every variable the context has
// ever blasted; callers restrict it to the query's variables.
func (s *Solver) solveIncremental(cs []*expr.Term) (satResult, expr.Assignment) {
	ctx := s.context()
	core := ctx.core
	baseC, baseP := core.conflicts, core.propagations
	assumps := make([]lit, 0, len(cs))
	for _, c := range cs {
		g, ok := ctx.guards[c]
		if ok {
			s.Stats.IncrementalReuses++
		} else {
			g = ctx.bl.freshLit()
			l := ctx.bl.blast(c)[0]
			core.addClause([]lit{g.not(), l})
			ctx.guards[c] = g
		}
		assumps = append(assumps, g)
	}
	// The budget is per query: translate it to an absolute conflict
	// target on the context's cumulative counter.
	if s.MaxConflicts > 0 {
		core.maxConflicts = core.conflicts + s.MaxConflicts
	} else {
		core.maxConflicts = -1
	}
	res := core.solveAssuming(assumps)
	s.Stats.Conflicts += core.conflicts - baseC
	s.Stats.Propagations += core.propagations - baseP
	var m expr.Assignment
	if res == satSat {
		m = ctx.bl.model()
	}
	core.cancelUntil(0)
	if !core.ok {
		// Guarded clauses alone cannot make the formula globally
		// unsatisfiable; if it happened anyway, rebuild next query.
		s.ctx = nil
	}
	return res, m
}

// solveFresh decides the conjunction in a throwaway SAT instance —
// plain whole-query blasting, used when Incremental is off and as the
// differential tests' reference behavior.
func (s *Solver) solveFresh(cs []*expr.Term) (satResult, expr.Assignment) {
	core := newSAT()
	if s.MaxConflicts > 0 {
		core.maxConflicts = s.MaxConflicts
	}
	bl := newBlaster(core)
	for _, c := range cs {
		bl.assertTrue(c)
	}
	res := core.solve()
	s.Stats.Conflicts += core.conflicts
	s.Stats.Propagations += core.propagations
	if res == satSat {
		return satSat, bl.model()
	}
	return res, nil
}
