package solver

import (
	"sort"

	"hardsnap/internal/expr"
)

// varSet returns the variables of t, sorted by name. With a Builder the
// set is memoized on the hash-consed DAG (O(1) per reused node); without
// one a per-solver memo is kept so repeated constraints stay cheap.
func (s *Solver) varSet(t *expr.Term) []*expr.Term {
	if s.Builder != nil {
		return s.Builder.VarSet(t)
	}
	if v, ok := s.localVars[t]; ok {
		return v
	}
	vars := expr.Vars(t, make(map[*expr.Term]bool), nil)
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name() < vars[j].Name() })
	if s.localVars == nil {
		s.localVars = make(map[*expr.Term][]*expr.Term)
	}
	s.localVars[t] = vars
	return vars
}

// partition splits a conjunction into its connected components
// ("independence slices"): constraints end up in the same slice iff
// they are linked through shared variables. Each slice can be decided
// independently — the conjunction is Sat iff every slice is, and the
// union of per-slice models is a model of the whole. Slices preserve
// first-occurrence order, so partitioning is deterministic.
func (s *Solver) partition(cs []*expr.Term) [][]*expr.Term {
	if len(cs) <= 1 {
		return [][]*expr.Term{cs}
	}
	parent := make([]int, len(cs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	owner := make(map[*expr.Term]int)
	for i, c := range cs {
		for _, v := range s.varSet(c) {
			if j, ok := owner[v]; ok {
				union(j, i)
			} else {
				owner[v] = i
			}
		}
	}
	index := make(map[int]int) // component root -> output slice
	var out [][]*expr.Term
	for i, c := range cs {
		r := find(i)
		gi, ok := index[r]
		if !ok {
			gi = len(out)
			index[r] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], c)
	}
	return out
}
