// Solver-cache fabric: the wire-portable face of the memoized verdict
// cache. A distributed exploration run shares one logical cache across
// nodes — counterexample (Sat model) and unsat verdicts discovered on
// any node are piggybacked on subtree results and imported everywhere
// else, so no node re-pays a query some other node already solved.
//
// Sharing is sound because verdicts are a pure function of the
// canonical key: the solver is deterministic, so the Sat model (or
// Unsat verdict) computed for a key on one node is byte-identical to
// what any other node would compute. Importing fabric entries can
// therefore change only *when* a verdict is known, never *what* it is
// — results, paths and virtual time are untouched (the same argument
// that lets PR 3 share the cache across in-process workers).
package solver

import "hardsnap/internal/expr"

// WireEntry is one memoized verdict in fabric-portable form.
type WireEntry struct {
	Key   CacheKey        `json:"key"`
	Res   Result          `json:"res"`
	Model expr.Assignment `json:"model,omitempty"`
}

// DeltaSince returns the locally discovered entries appended after
// cursor (a value previously returned by DeltaSince; 0 for the
// beginning), plus the new cursor. Imported entries are not replayed:
// each node propagates only what it discovered itself, and the driver
// relays across nodes, so entries never echo in cycles.
func (c *Cache) DeltaSince(cursor int) ([]WireEntry, int) {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(c.log) {
		cursor = len(c.log)
	}
	delta := make([]WireEntry, len(c.log)-cursor)
	copy(delta, c.log[cursor:])
	return delta, len(c.log)
}

// Import memoizes fabric entries (skipping keys already present) and
// returns how many were newly inserted. Imported entries are not
// added to the local changelog.
func (c *Cache) Import(entries []WireEntry) int {
	n := 0
	for _, e := range entries {
		if c.store(e.Key, e.Res, e.Model, false) {
			n++
		}
	}
	c.imported.Add(int64(n))
	return n
}

// logEntry appends a locally discovered verdict to the changelog. The
// log is capped at the cache capacity: past that, new entries simply
// stop propagating (a performance matter only — correctness never
// depends on the fabric).
func (c *Cache) logEntry(key CacheKey, res Result, model expr.Assignment) {
	c.logMu.Lock()
	if len(c.log) < c.capacity {
		c.log = append(c.log, WireEntry{Key: key, Res: res, Model: model})
	}
	c.logMu.Unlock()
}
