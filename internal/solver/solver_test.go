package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hardsnap/internal/expr"
)

func checkSat(t *testing.T, s *Solver, cs []*expr.Term) expr.Assignment {
	t.Helper()
	res, m, err := s.Check(cs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res != Sat {
		t.Fatalf("expected sat, got %v", res)
	}
	for _, c := range cs {
		if expr.Eval(c, m) != 1 {
			t.Fatalf("model %v does not satisfy %v", m, c)
		}
	}
	return m
}

func checkUnsat(t *testing.T, s *Solver, cs []*expr.Term) {
	t.Helper()
	res, _, err := s.Check(cs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res != Unsat {
		t.Fatalf("expected unsat, got %v", res)
	}
}

func TestTrivial(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	checkSat(t, s, nil)
	checkSat(t, s, []*expr.Term{b.Bool(true)})
	checkUnsat(t, s, []*expr.Term{b.Bool(false)})
}

func TestSimpleEquation(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	// x + 3 == 10  ->  x == 7
	m := checkSat(t, s, []*expr.Term{b.Eq(b.Add(x, b.Const(3, 8)), b.Const(10, 8))})
	if m["x"] != 7 {
		t.Fatalf("x = %d, want 7", m["x"])
	}
}

func TestContradiction(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	checkUnsat(t, s, []*expr.Term{
		b.Eq(x, b.Const(1, 8)),
		b.Eq(x, b.Const(2, 8)),
	})
}

func TestUnsignedComparison(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	m := checkSat(t, s, []*expr.Term{
		b.Ult(b.Const(250, 8), x),
		b.Ult(x, b.Const(253, 8)),
	})
	if m["x"] != 251 && m["x"] != 252 {
		t.Fatalf("x = %d, want 251 or 252", m["x"])
	}
	checkUnsat(t, s, []*expr.Term{
		b.Ult(b.Const(252, 8), x),
		b.Ult(x, b.Const(253, 8)),
	})
}

func TestSignedComparison(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	m := checkSat(t, s, []*expr.Term{
		b.Slt(x, b.Const(0, 8)),
		b.Slt(b.Const(0xFD, 8), x), // -3 < x < 0
	})
	got := int8(m["x"])
	if got != -2 && got != -1 {
		t.Fatalf("x = %d, want -2 or -1", got)
	}
}

func TestMultiplication(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// x * y == 35, x > 1, y > 1 -> {5,7}
	m := checkSat(t, s, []*expr.Term{
		b.Eq(b.Mul(x, y), b.Const(35, 8)),
		b.Ult(b.Const(1, 8), x),
		b.Ult(b.Const(1, 8), y),
		b.Ult(x, b.Const(16, 8)),
		b.Ult(y, b.Const(16, 8)),
	})
	if m["x"]*m["y"]&0xFF != 35 {
		t.Fatalf("x*y = %d, want 35", m["x"]*m["y"])
	}
}

func TestDivision(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	// x / 7 == 5 and x % 7 == 3 -> x == 38
	m := checkSat(t, s, []*expr.Term{
		b.Eq(b.UDiv(x, b.Const(7, 8)), b.Const(5, 8)),
		b.Eq(b.URem(x, b.Const(7, 8)), b.Const(3, 8)),
	})
	if m["x"] != 38 {
		t.Fatalf("x = %d, want 38", m["x"])
	}
}

func TestDivisionByZeroSemantics(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// y == 0 and x / y == x_div -> x_div must be 0xFF
	checkUnsat(t, s, []*expr.Term{
		b.Eq(y, b.Const(0, 8)),
		b.Ne(b.UDiv(x, y), b.Const(0xFF, 8)),
	})
	// x % 0 == x
	checkUnsat(t, s, []*expr.Term{
		b.Eq(y, b.Const(0, 8)),
		b.Ne(b.URem(x, y), x),
	})
}

func TestShifts(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	sh := b.Var("sh", 8)
	m := checkSat(t, s, []*expr.Term{
		b.Eq(b.Shl(x, sh), b.Const(0x40, 8)),
		b.Eq(sh, b.Const(3, 8)),
		b.Ult(x, b.Const(16, 8)),
	})
	if m["x"] != 8 {
		t.Fatalf("x = %d, want 8", m["x"])
	}
	// Oversized shift yields zero.
	checkUnsat(t, s, []*expr.Term{
		b.Eq(sh, b.Const(9, 8)),
		b.Ne(b.Shl(x, sh), b.Const(0, 8)),
	})
}

func TestAshrSymbolic(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	// x >> 4 (arith) == 0xFF implies sign bit set.
	m := checkSat(t, s, []*expr.Term{
		b.Eq(b.Ashr(x, b.Const(4, 8)), b.Const(0xFF, 8)),
	})
	if m["x"]&0x80 == 0 {
		t.Fatalf("x = %#x should have sign bit set", m["x"])
	}
}

func TestConcatExtract(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	hi := b.Var("hi", 8)
	lo := b.Var("lo", 8)
	word := b.Concat(hi, lo)
	m := checkSat(t, s, []*expr.Term{
		b.Eq(word, b.Const(0xBEEF, 16)),
	})
	if m["hi"] != 0xBE || m["lo"] != 0xEF {
		t.Fatalf("hi=%#x lo=%#x, want BE/EF", m["hi"], m["lo"])
	}
}

func TestIte(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	c := b.Var("c", 1)
	x := b.Ite(c, b.Const(10, 8), b.Const(20, 8))
	m := checkSat(t, s, []*expr.Term{b.Eq(x, b.Const(20, 8))})
	if m["c"] != 0 {
		t.Fatalf("c = %d, want 0", m["c"])
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := expr.NewBuilder()
	s := New(1) // one conflict allowed
	// A moderately hard instance: multiplication inversion.
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	cs := []*expr.Term{
		b.Eq(b.Mul(x, y), b.Const(0x12345677, 32)),
		b.Ult(b.Const(2, 32), x),
		b.Ult(b.Const(2, 32), y),
	}
	res, _, err := s.Check(cs)
	if res == Unknown && err != ErrBudget {
		t.Fatalf("unknown result must carry ErrBudget, got %v", err)
	}
}

func TestValuesEnumeration(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	cs := []*expr.Term{b.Ult(x, b.Const(3, 8))}
	vals := s.Values(b, cs, x, 10)
	if len(vals) != 3 {
		t.Fatalf("got %d values, want 3: %v", len(vals), vals)
	}
	seen := map[uint64]bool{}
	for _, v := range vals {
		if v >= 3 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestMustValue(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	v, ok := s.MustValue([]*expr.Term{b.Eq(x, b.Const(99, 8))}, x)
	if !ok || v != 99 {
		t.Fatalf("got %d/%v, want 99/true", v, ok)
	}
	_, ok = s.MustValue([]*expr.Term{b.Bool(false)}, x)
	if ok {
		t.Fatal("infeasible constraints must not produce a value")
	}
}

// TestExhaustiveSmallWidth cross-checks the solver against brute-force
// enumeration on 4-bit problems covering every operator.
func TestExhaustiveSmallWidth(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)

	ops := []struct {
		name string
		mk   func(x, y *expr.Term) *expr.Term
	}{
		{"add", func(x, y *expr.Term) *expr.Term { return b.Add(x, y) }},
		{"sub", func(x, y *expr.Term) *expr.Term { return b.Sub(x, y) }},
		{"mul", func(x, y *expr.Term) *expr.Term { return b.Mul(x, y) }},
		{"udiv", func(x, y *expr.Term) *expr.Term { return b.UDiv(x, y) }},
		{"urem", func(x, y *expr.Term) *expr.Term { return b.URem(x, y) }},
		{"and", func(x, y *expr.Term) *expr.Term { return b.And(x, y) }},
		{"or", func(x, y *expr.Term) *expr.Term { return b.Or(x, y) }},
		{"xor", func(x, y *expr.Term) *expr.Term { return b.Xor(x, y) }},
		{"shl", func(x, y *expr.Term) *expr.Term { return b.Shl(x, y) }},
		{"lshr", func(x, y *expr.Term) *expr.Term { return b.Lshr(x, y) }},
		{"ashr", func(x, y *expr.Term) *expr.Term { return b.Ashr(x, y) }},
	}

	rng := rand.New(rand.NewSource(7))
	for _, op := range ops {
		t.Run(op.name, func(t *testing.T) {
			term := op.mk(x, y)
			// Pick a handful of target values; solver answer must agree
			// with brute force feasibility.
			for trial := 0; trial < 6; trial++ {
				target := uint64(rng.Intn(16))
				feasible := false
				for xv := uint64(0); xv < 16 && !feasible; xv++ {
					for yv := uint64(0); yv < 16; yv++ {
						if expr.Eval(term, expr.Assignment{"x": xv, "y": yv}) == target {
							feasible = true
							break
						}
					}
				}
				s := New(0)
				cs := []*expr.Term{b.Eq(term, b.Const(target, 4))}
				res, m, err := s.Check(cs)
				if err != nil {
					t.Fatal(err)
				}
				if feasible && res != Sat {
					t.Fatalf("%s == %d feasible but solver says %v", op.name, target, res)
				}
				if !feasible && res != Unsat {
					t.Fatalf("%s == %d infeasible but solver says %v (model %v)", op.name, target, res, m)
				}
			}
		})
	}
}

// TestQuickModelsSatisfy asserts via testing/quick that whenever the
// solver answers Sat, the returned model really satisfies the
// constraints.
func TestQuickModelsSatisfy(t *testing.T) {
	f := func(av, bv uint16, sel uint8) bool {
		b := expr.NewBuilder()
		s := New(0)
		x := b.Var("x", 16)
		y := b.Var("y", 16)
		var c1, c2 *expr.Term
		switch sel % 4 {
		case 0:
			c1 = b.Eq(b.Add(x, y), b.Const(uint64(av), 16))
			c2 = b.Ult(x, b.Const(uint64(bv)|1, 16))
		case 1:
			c1 = b.Eq(b.Xor(x, y), b.Const(uint64(av), 16))
			c2 = b.Eq(b.And(x, b.Const(0xFF, 16)), b.Const(uint64(bv&0xFF), 16))
		case 2:
			c1 = b.Ule(x, b.Const(uint64(av), 16))
			c2 = b.Ule(b.Const(uint64(bv), 16), x)
		default:
			c1 = b.Eq(b.Sub(x, y), b.Const(uint64(av), 16))
			c2 = b.Slt(y, b.Const(uint64(bv), 16))
		}
		cs := []*expr.Term{c1, c2}
		res, m, err := s.Check(cs)
		if err != nil {
			return false
		}
		if res == Sat {
			return expr.Eval(c1, m) == 1 && expr.Eval(c2, m) == 1
		}
		return res == Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func Test32BitArithmetic(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 32)
	// Classic: find x with (x ^ 0xDEADBEEF) + 0x1111 == 0xCAFEBABE
	m := checkSat(t, s, []*expr.Term{
		b.Eq(b.Add(b.Xor(x, b.Const(0xDEADBEEF, 32)), b.Const(0x1111, 32)), b.Const(0xCAFEBABE, 32)),
	})
	got := (m["x"] ^ 0xDEADBEEF) + 0x1111&0xFFFFFFFF
	if got&0xFFFFFFFF != 0xCAFEBABE {
		t.Fatalf("model check failed: %#x", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := expr.NewBuilder()
	s := New(0)
	x := b.Var("x", 8)
	checkSat(t, s, []*expr.Term{b.Eq(x, b.Const(5, 8))})
	checkUnsat(t, s, []*expr.Term{b.Bool(false)})
	if s.Stats.Queries != 2 || s.Stats.SatAnswers != 1 || s.Stats.UnsatAnswers != 1 {
		t.Fatalf("stats wrong: %+v", s.Stats)
	}
}
