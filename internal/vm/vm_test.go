package vm

import (
	"errors"
	"testing"

	"hardsnap/internal/asm"
	"hardsnap/internal/isa"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cpu := New(Config{}, nil)
	if err := cpu.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	cpu.Run(100000)
	return cpu
}

func TestArithmeticProgram(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 6
		addi r2, r0, 7
		mul r3, r1, r2
		halt
	`)
	if cpu.Stop != StopHalt {
		t.Fatalf("stop %v (fault %v)", cpu.Stop, cpu.Fault)
	}
	if cpu.Regs[3] != 42 {
		t.Fatalf("r3 = %d, want 42", cpu.Regs[3])
	}
}

func TestLoop(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 10
		addi r2, r0, 0
loop:
		add r2, r2, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if cpu.Regs[2] != 55 {
		t.Fatalf("sum = %d, want 55", cpu.Regs[2])
	}
}

func TestMemoryAccess(t *testing.T) {
	cpu := run(t, `
		li r1, 0x100
		li r2, 0xCAFEBABE
		sw r2, 0(r1)
		lw r3, 0(r1)
		lh r4, 0(r1)
		lhu r5, 0(r1)
		lb r6, 3(r1)
		lbu r7, 3(r1)
		sb r2, 8(r1)
		lw r8, 8(r1)
		halt
	`)
	if cpu.Regs[3] != 0xCAFEBABE {
		t.Errorf("lw: %#x", cpu.Regs[3])
	}
	if cpu.Regs[4] != 0xFFFFBABE {
		t.Errorf("lh: %#x", cpu.Regs[4])
	}
	if cpu.Regs[5] != 0x0000BABE {
		t.Errorf("lhu: %#x", cpu.Regs[5])
	}
	if cpu.Regs[6] != 0xFFFFFFCA {
		t.Errorf("lb: %#x", cpu.Regs[6])
	}
	if cpu.Regs[7] != 0x000000CA {
		t.Errorf("lbu: %#x", cpu.Regs[7])
	}
	if cpu.Regs[8] != 0x000000BE {
		t.Errorf("sb/lw: %#x", cpu.Regs[8])
	}
}

func TestCallReturn(t *testing.T) {
	cpu := run(t, `
_start:
		li sp, 0x1000
		addi r1, r0, 20
		call double
		mv r5, r1
		halt
double:
		add r1, r1, r1
		ret
	`)
	if cpu.Regs[5] != 40 {
		t.Fatalf("r5 = %d, want 40", cpu.Regs[5])
	}
}

func TestR0IsZero(t *testing.T) {
	cpu := run(t, `
		addi r0, r0, 5
		mv r1, r0
		halt
	`)
	if cpu.Regs[1] != 0 || cpu.Regs[0] != 0 {
		t.Fatalf("r0 not hardwired to zero: r0=%d r1=%d", cpu.Regs[0], cpu.Regs[1])
	}
}

func TestAssertPassAndFail(t *testing.T) {
	pass := run(t, `
		addi r1, r0, 1
		ecall 2
		halt
	`)
	if pass.Stop != StopHalt {
		t.Fatalf("assert(1) should pass, got %v", pass.Stop)
	}
	fail := run(t, `
		addi r1, r0, 0
		ecall 2
		halt
	`)
	if fail.Stop != StopAssertFail {
		t.Fatalf("assert(0) should fail, got %v", fail.Stop)
	}
}

func TestConsoleOutput(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 72 ; 'H'
		ecall 3
		addi r1, r0, 105 ; 'i'
		ecall 3
		addi r1, r0, 42
		ecall 7
		halt
	`)
	if string(cpu.Console) != "Hi42" {
		t.Fatalf("console %q", cpu.Console)
	}
}

func TestFaults(t *testing.T) {
	t.Run("load-unmapped", func(t *testing.T) {
		cpu := run(t, `
			li r1, 0x20000000
			lw r2, 0(r1)
		`)
		if cpu.Stop != StopFault {
			t.Fatalf("stop %v", cpu.Stop)
		}
		var fe *FaultError
		if !errors.As(cpu.Fault, &fe) {
			t.Fatalf("fault type %T", cpu.Fault)
		}
	})
	t.Run("illegal-instruction", func(t *testing.T) {
		cpu := run(t, `.word 0xFFFFFFFF`)
		if cpu.Stop != StopFault {
			t.Fatalf("stop %v", cpu.Stop)
		}
	})
	t.Run("fetch-out-of-ram", func(t *testing.T) {
		cpu := run(t, `
			li r1, 0x30000000
			jalr r0, r1, 0
		`)
		if cpu.Stop != StopFault {
			t.Fatalf("stop %v", cpu.Stop)
		}
	})
	t.Run("mmio-without-device", func(t *testing.T) {
		cpu := run(t, `
			li r1, 0x40000000
			lw r2, 0(r1)
		`)
		if cpu.Stop != StopFault {
			t.Fatalf("stop %v", cpu.Stop)
		}
	})
}

func TestBudget(t *testing.T) {
	p, err := asm.Assemble("loop: j loop", 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(Config{}, nil)
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Run(100); got != StopBudget {
		t.Fatalf("stop %v, want budget", got)
	}
}

// fakeMMIO is a trivial device: reads return the register address,
// writes are recorded.
type fakeMMIO struct {
	writes map[uint32]uint32
}

func (f *fakeMMIO) ReadMMIO(addr uint32, size int) (uint32, error) {
	return addr & 0xFFFF, nil
}

func (f *fakeMMIO) WriteMMIO(addr uint32, size int, val uint32) error {
	if f.writes == nil {
		f.writes = make(map[uint32]uint32)
	}
	f.writes[addr] = val
	return nil
}

func TestMMIOForwarding(t *testing.T) {
	p, err := asm.Assemble(`
		li r1, 0x40000010
		lw r2, 0(r1)
		li r3, 77
		sw r3, 4(r1)
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := &fakeMMIO{}
	cpu := New(Config{}, dev)
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Run(0); got != StopHalt {
		t.Fatalf("stop %v (fault %v)", got, cpu.Fault)
	}
	if cpu.Regs[2] != 0x10 {
		t.Errorf("MMIO read r2 = %#x", cpu.Regs[2])
	}
	if dev.writes[0x40000014] != 77 {
		t.Errorf("MMIO write: %v", dev.writes)
	}
}

func TestInterrupts(t *testing.T) {
	// Vector table at 0xFC0; IRQ 2 handler increments r5 then MRETs.
	src := `
_start:
		la r1, handler
		li r2, 0xFC8        ; vector slot for IRQ 2
		sw r1, 0(r2)
		addi r5, r0, 0
wait:
		beq r5, r0, wait
		halt
handler:
		addi r5, r5, 1
		mret
	`
	p, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(Config{}, nil)
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	// Run a few instructions, then raise the IRQ.
	for i := 0; i < 20; i++ {
		cpu.Step()
	}
	cpu.RaiseIRQ(2)
	if got := cpu.Run(1000); got != StopHalt {
		t.Fatalf("stop %v (fault %v, pc %#x)", got, cpu.Fault, cpu.PC)
	}
	if cpu.Regs[5] != 1 {
		t.Fatalf("handler ran %d times, want 1", cpu.Regs[5])
	}
}

func TestInterruptAtomicity(t *testing.T) {
	// Two IRQs raised while in a handler: the second must wait until
	// after MRET.
	src := `
_start:
		la r1, handler
		li r2, 0xFC0
		sw r1, 0(r2)
		sw r1, 4(r2)
		addi r5, r0, 0
wait:
		addi r6, r6, 1
		slti r7, r6, 50
		bne r7, r0, wait
		halt
handler:
		addi r5, r5, 1
		; While in the handler, InHandler should block nested dispatch.
		mret
	`
	p, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(Config{}, nil)
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		cpu.Step()
	}
	cpu.RaiseIRQ(0)
	cpu.RaiseIRQ(1)
	// Step into the first handler: one dispatch only.
	cpu.Step() // dispatch IRQ0 + first handler inst
	if !cpu.InHandler {
		t.Fatal("should be in handler")
	}
	if cpu.PendingIRQs() != 2 {
		t.Fatalf("pending %#x, want IRQ1 still pending", cpu.PendingIRQs())
	}
	if got := cpu.Run(1000); got != StopHalt {
		t.Fatalf("stop %v", got)
	}
	if cpu.Regs[5] != 2 {
		t.Fatalf("handlers ran %d times, want 2", cpu.Regs[5])
	}
}

func TestResetClearsState(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 9
		halt
	`)
	cpu.Reset()
	if cpu.Regs[1] != 0 || cpu.PC != 0 || cpu.Stop != StopNone || cpu.Cycles != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestOnEcallHook(t *testing.T) {
	p, err := asm.Assemble(`
		ecall 1
		halt
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(Config{}, nil)
	if err := cpu.Load(p); err != nil {
		t.Fatal(err)
	}
	called := false
	cpu.OnEcall = func(c *CPU, service int32) bool {
		if service == isa.EcallMakeSymbolic {
			called = true
			return true
		}
		return false
	}
	cpu.Run(0)
	if !called {
		t.Fatal("OnEcall hook not invoked")
	}
}

func TestShiftEdgeCases(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 1
		addi r2, r0, 40
		sll r3, r1, r2   ; shift >= 32 -> 0
		li r4, 0x80000000
		srl r5, r4, r2   ; -> 0
		sra r6, r4, r2   ; -> all ones
		halt
	`)
	if cpu.Regs[3] != 0 {
		t.Errorf("sll overflow: %#x", cpu.Regs[3])
	}
	if cpu.Regs[5] != 0 {
		t.Errorf("srl overflow: %#x", cpu.Regs[5])
	}
	if cpu.Regs[6] != 0xFFFFFFFF {
		t.Errorf("sra overflow: %#x", cpu.Regs[6])
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 100
		addi r2, r0, 0
		divu r3, r1, r2  ; -> all ones
		remu r4, r1, r2  ; -> 100
		addi r5, r0, 7
		divu r6, r1, r5  ; -> 14
		remu r7, r1, r5  ; -> 2
		halt
	`)
	if cpu.Regs[3] != 0xFFFFFFFF {
		t.Errorf("div0: %#x", cpu.Regs[3])
	}
	if cpu.Regs[4] != 100 {
		t.Errorf("rem0: %d", cpu.Regs[4])
	}
	if cpu.Regs[6] != 14 || cpu.Regs[7] != 2 {
		t.Errorf("div/rem: %d %d", cpu.Regs[6], cpu.Regs[7])
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 5
		li r2, 0x300
		sw r1, 0(r2)
		halt
	`)
	snap := cpu.Snapshot()
	// Mutate everything.
	cpu.Reset()
	if cpu.Regs[1] != 0 {
		t.Fatal("reset failed")
	}
	cpu.RestoreSnapshot(snap)
	if cpu.Regs[1] != 5 || cpu.PC != snap.PC || cpu.Stop != StopNone {
		t.Fatalf("restore: r1=%d pc=%#x stop=%v", cpu.Regs[1], cpu.PC, cpu.Stop)
	}
	v, err := cpu.ReadMem(0x300, 4)
	if err != nil || v != 5 {
		t.Fatalf("memory not restored: %d %v", v, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	cpu := run(t, `
		addi r1, r0, 1
		halt
	`)
	snap := cpu.Snapshot()
	cpu.Mem[0x500] = 0xAA
	if snap.Mem[0x500] == 0xAA {
		t.Fatal("snapshot aliases live memory")
	}
}
