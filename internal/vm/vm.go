// Package vm implements the concrete HS32 virtual machine: a
// cycle-counted interpreter with a flat RAM, a forwarded memory-mapped
// I/O window and single-level precise interrupts. It is the concrete
// twin of the symbolic interpreter in internal/symexec and the
// execution vehicle for the fuzzing engine.
package vm

import (
	"errors"
	"fmt"

	"hardsnap/internal/asm"
	"hardsnap/internal/isa"
)

// MMIO is the bus interface the CPU forwards device accesses to.
// Sizes are 1, 2 or 4 bytes; addresses are absolute.
type MMIO interface {
	ReadMMIO(addr uint32, size int) (uint32, error)
	WriteMMIO(addr uint32, size int, val uint32) error
}

// StopReason explains why execution stopped.
type StopReason int

// Stop reasons.
const (
	StopNone       StopReason = iota // still running
	StopHalt                         // ecall halt
	StopAbort                        // ecall abort
	StopAssertFail                   // ecall assert with zero argument
	StopFault                        // memory or decode fault
	StopBudget                       // instruction budget exhausted
)

// String returns a human-readable stop reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "running"
	case StopHalt:
		return "halt"
	case StopAbort:
		return "abort"
	case StopAssertFail:
		return "assertion failure"
	case StopFault:
		return "fault"
	case StopBudget:
		return "budget exhausted"
	}
	return "unknown"
}

// FaultError describes a memory or decode fault.
type FaultError struct {
	PC   uint32
	Addr uint32
	Msg  string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("vm: fault at pc=%#08x addr=%#08x: %s", e.PC, e.Addr, e.Msg)
}

// Config describes the machine layout.
type Config struct {
	RAMBase  uint32 // default 0
	RAMSize  uint32 // default 1 MiB
	MMIOBase uint32 // default 0x4000_0000
	MMIOSize uint32 // default 64 KiB
	// VectorBase is the interrupt vector table: the handler for IRQ n
	// is the address stored at VectorBase + 4n. Default 0x0000_0FC0.
	VectorBase uint32
	// NumIRQs is the number of interrupt lines. Default 8.
	NumIRQs int
}

func (c *Config) setDefaults() {
	if c.RAMSize == 0 {
		c.RAMSize = 1 << 20
	}
	if c.MMIOBase == 0 {
		c.MMIOBase = 0x40000000
	}
	if c.MMIOSize == 0 {
		c.MMIOSize = 1 << 16
	}
	if c.VectorBase == 0 {
		c.VectorBase = 0x00000FC0
	}
	if c.NumIRQs == 0 {
		c.NumIRQs = 8
	}
}

// CPU is a concrete HS32 machine instance.
type CPU struct {
	Regs [isa.NumRegs]uint32
	PC   uint32

	// EPC holds the return address while an interrupt is serviced.
	EPC        uint32
	InHandler  bool
	IRQEnabled bool

	Mem  []byte
	cfg  Config
	mmio MMIO

	pending uint32 // bitmask of pending IRQ lines

	// Cycles counts retired instructions.
	Cycles uint64

	// Stop records why execution ended; StopNone while running.
	Stop StopReason
	// Fault carries detail when Stop == StopFault.
	Fault error

	// Console accumulates EcallPutChar/EcallPutInt output.
	Console []byte

	// OnEcall, when non-nil, intercepts environment calls before the
	// default handling; returning true consumes the call.
	OnEcall func(cpu *CPU, service int32) bool
}

// New creates a CPU with the given layout and MMIO handler (which may
// be nil if the firmware never touches the MMIO window).
func New(cfg Config, mmio MMIO) *CPU {
	cfg.setDefaults()
	return &CPU{
		Mem:        make([]byte, cfg.RAMSize),
		cfg:        cfg,
		mmio:       mmio,
		IRQEnabled: true,
	}
}

// Config returns the machine layout.
func (c *CPU) Config() Config { return c.cfg }

// MMIODevice returns the bus the CPU currently forwards device
// accesses to (nil if none is attached).
func (c *CPU) MMIODevice() MMIO { return c.mmio }

// SetMMIO swaps the bus the CPU forwards device accesses to. The
// hybrid fuzzer uses it to interpose a recording shim around the
// router for one execution (MMIO trace capture for concolic replay)
// and to put the router back afterwards.
func (c *CPU) SetMMIO(m MMIO) { c.mmio = m }

// Load copies an assembled program into RAM and points PC at its entry.
func (c *CPU) Load(p *asm.Program) error {
	off := int64(p.Base) - int64(c.cfg.RAMBase)
	if off < 0 || off+int64(len(p.Code)) > int64(len(c.Mem)) {
		return errors.New("vm: program does not fit in RAM")
	}
	copy(c.Mem[off:], p.Code)
	c.PC = p.Entry
	return nil
}

// Reset returns the CPU to its power-on state, clearing RAM,
// registers and stop state. The MMIO device is not touched.
func (c *CPU) Reset() {
	for i := range c.Mem {
		c.Mem[i] = 0
	}
	c.Regs = [isa.NumRegs]uint32{}
	c.PC = 0
	c.EPC = 0
	c.InHandler = false
	c.IRQEnabled = true
	c.pending = 0
	c.Cycles = 0
	c.Stop = StopNone
	c.Fault = nil
	c.Console = nil
}

// RaiseIRQ marks interrupt line n pending.
func (c *CPU) RaiseIRQ(n int) {
	if n >= 0 && n < c.cfg.NumIRQs {
		c.pending |= 1 << uint(n)
	}
}

// PendingIRQs returns the pending bitmask (for snapshotting).
func (c *CPU) PendingIRQs() uint32 { return c.pending }

// SetPendingIRQs restores the pending bitmask (for snapshotting).
func (c *CPU) SetPendingIRQs(v uint32) { c.pending = v }

func (c *CPU) inRAM(addr uint32, size uint32) bool {
	return addr >= c.cfg.RAMBase && addr-c.cfg.RAMBase+size <= c.cfg.RAMSize
}

func (c *CPU) inMMIO(addr uint32, size uint32) bool {
	return addr >= c.cfg.MMIOBase && addr-c.cfg.MMIOBase+size <= c.cfg.MMIOSize
}

// ReadMem performs a data load of size bytes (1, 2 or 4).
func (c *CPU) ReadMem(addr uint32, size int) (uint32, error) {
	if c.inRAM(addr, uint32(size)) {
		off := addr - c.cfg.RAMBase
		var v uint32
		for i := 0; i < size; i++ {
			v |= uint32(c.Mem[off+uint32(i)]) << (8 * uint(i))
		}
		return v, nil
	}
	if c.inMMIO(addr, uint32(size)) {
		if c.mmio == nil {
			return 0, &FaultError{PC: c.PC, Addr: addr, Msg: "MMIO access with no device attached"}
		}
		return c.mmio.ReadMMIO(addr, size)
	}
	return 0, &FaultError{PC: c.PC, Addr: addr, Msg: "load outside mapped memory"}
}

// WriteMem performs a data store of size bytes (1, 2 or 4).
func (c *CPU) WriteMem(addr uint32, size int, val uint32) error {
	if c.inRAM(addr, uint32(size)) {
		off := addr - c.cfg.RAMBase
		for i := 0; i < size; i++ {
			c.Mem[off+uint32(i)] = byte(val >> (8 * uint(i)))
		}
		return nil
	}
	if c.inMMIO(addr, uint32(size)) {
		if c.mmio == nil {
			return &FaultError{PC: c.PC, Addr: addr, Msg: "MMIO access with no device attached"}
		}
		return c.mmio.WriteMMIO(addr, size, val)
	}
	return &FaultError{PC: c.PC, Addr: addr, Msg: "store outside mapped memory"}
}

func (c *CPU) fetch() (isa.Inst, error) {
	if !c.inRAM(c.PC, 4) {
		return isa.Inst{}, &FaultError{PC: c.PC, Addr: c.PC, Msg: "instruction fetch outside RAM"}
	}
	w, err := c.ReadMem(c.PC, 4)
	if err != nil {
		return isa.Inst{}, err
	}
	in, err := isa.Decode(w)
	if err != nil {
		return isa.Inst{}, &FaultError{PC: c.PC, Addr: c.PC, Msg: err.Error()}
	}
	return in, nil
}

func (c *CPU) setReg(r uint8, v uint32) {
	if r != isa.RegZero {
		c.Regs[r] = v
	}
}

// checkIRQ dispatches a pending interrupt if the CPU can take one.
// Interrupts are only taken at instruction boundaries and are atomic:
// a handler runs to completion (MRET) before another is dispatched,
// mirroring INCEPTION's interrupt-atomicity rule.
func (c *CPU) checkIRQ() error {
	if !c.IRQEnabled || c.InHandler || c.pending == 0 {
		return nil
	}
	for n := 0; n < c.cfg.NumIRQs; n++ {
		if c.pending&(1<<uint(n)) == 0 {
			continue
		}
		c.pending &^= 1 << uint(n)
		handler, err := c.ReadMem(c.cfg.VectorBase+uint32(4*n), 4)
		if err != nil {
			return err
		}
		if handler == 0 {
			// Unpopulated vector: drop the interrupt.
			return nil
		}
		c.EPC = c.PC
		c.InHandler = true
		c.PC = handler
		return nil
	}
	return nil
}

// Step executes one instruction (servicing at most one pending
// interrupt first). It returns false when execution has stopped.
func (c *CPU) Step() bool {
	if c.Stop != StopNone {
		return false
	}
	if err := c.checkIRQ(); err != nil {
		c.Stop = StopFault
		c.Fault = err
		return false
	}
	in, err := c.fetch()
	if err != nil {
		c.Stop = StopFault
		c.Fault = err
		return false
	}
	c.Cycles++
	next := c.PC + 4
	r := &c.Regs

	switch in.Op {
	case isa.OpADD:
		c.setReg(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.OpSUB:
		c.setReg(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.OpAND:
		c.setReg(in.Rd, r[in.Rs1]&r[in.Rs2])
	case isa.OpOR:
		c.setReg(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.OpXOR:
		c.setReg(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.OpSLL:
		c.setReg(in.Rd, shl(r[in.Rs1], r[in.Rs2]))
	case isa.OpSRL:
		c.setReg(in.Rd, shr(r[in.Rs1], r[in.Rs2]))
	case isa.OpSRA:
		c.setReg(in.Rd, sra(r[in.Rs1], r[in.Rs2]))
	case isa.OpMUL:
		c.setReg(in.Rd, r[in.Rs1]*r[in.Rs2])
	case isa.OpDIVU:
		c.setReg(in.Rd, divu(r[in.Rs1], r[in.Rs2]))
	case isa.OpREMU:
		c.setReg(in.Rd, remu(r[in.Rs1], r[in.Rs2]))
	case isa.OpSLT:
		c.setReg(in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])))
	case isa.OpSLTU:
		c.setReg(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]))

	case isa.OpADDI:
		c.setReg(in.Rd, r[in.Rs1]+uint32(in.Imm))
	case isa.OpANDI:
		c.setReg(in.Rd, r[in.Rs1]&uint32(in.Imm))
	case isa.OpORI:
		c.setReg(in.Rd, r[in.Rs1]|uint32(in.Imm))
	case isa.OpXORI:
		c.setReg(in.Rd, r[in.Rs1]^uint32(in.Imm))
	case isa.OpSLLI:
		c.setReg(in.Rd, shl(r[in.Rs1], uint32(in.Imm)))
	case isa.OpSRLI:
		c.setReg(in.Rd, shr(r[in.Rs1], uint32(in.Imm)))
	case isa.OpSRAI:
		c.setReg(in.Rd, sra(r[in.Rs1], uint32(in.Imm)))
	case isa.OpSLTI:
		c.setReg(in.Rd, b2u(int32(r[in.Rs1]) < in.Imm))
	case isa.OpSLTIU:
		c.setReg(in.Rd, b2u(r[in.Rs1] < uint32(in.Imm)))

	case isa.OpLUI:
		c.setReg(in.Rd, isa.LUIValue(in.Imm))

	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		addr := r[in.Rs1] + uint32(in.Imm)
		size := loadSize(in.Op)
		v, err := c.ReadMem(addr, size)
		if err != nil {
			c.Stop = StopFault
			c.Fault = err
			return false
		}
		switch in.Op {
		case isa.OpLH:
			v = uint32(int32(int16(v)))
		case isa.OpLB:
			v = uint32(int32(int8(v)))
		}
		c.setReg(in.Rd, v)

	case isa.OpSW, isa.OpSH, isa.OpSB:
		addr := r[in.Rs1] + uint32(in.Imm)
		size := storeSize(in.Op)
		if err := c.WriteMem(addr, size, r[in.Rs2]); err != nil {
			c.Stop = StopFault
			c.Fault = err
			return false
		}

	case isa.OpBEQ:
		if r[in.Rs1] == r[in.Rs2] {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBNE:
		if r[in.Rs1] != r[in.Rs2] {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBLT:
		if int32(r[in.Rs1]) < int32(r[in.Rs2]) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBGE:
		if int32(r[in.Rs1]) >= int32(r[in.Rs2]) {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBLTU:
		if r[in.Rs1] < r[in.Rs2] {
			next = c.PC + uint32(in.Imm)
		}
	case isa.OpBGEU:
		if r[in.Rs1] >= r[in.Rs2] {
			next = c.PC + uint32(in.Imm)
		}

	case isa.OpJAL:
		c.setReg(in.Rd, c.PC+4)
		next = c.PC + uint32(in.Imm)
	case isa.OpJALR:
		c.setReg(in.Rd, c.PC+4)
		next = (r[in.Rs1] + uint32(in.Imm)) &^ 3

	case isa.OpECALL:
		if c.OnEcall != nil && c.OnEcall(c, in.Imm) {
			break
		}
		switch in.Imm {
		case isa.EcallHalt:
			c.Stop = StopHalt
		case isa.EcallAbort:
			c.Stop = StopAbort
		case isa.EcallAssert:
			if r[1] == 0 {
				c.Stop = StopAssertFail
			}
		case isa.EcallPutChar:
			c.Console = append(c.Console, byte(r[1]))
		case isa.EcallPutInt:
			c.Console = append(c.Console, []byte(fmt.Sprintf("%d", r[1]))...)
		case isa.EcallMakeSymbolic, isa.EcallAssume, isa.EcallSnapshotHint:
			// Concrete execution treats symbolic intrinsics as no-ops;
			// the fuzzer overrides OnEcall to feed inputs.
		default:
			c.Stop = StopFault
			c.Fault = &FaultError{PC: c.PC, Addr: c.PC, Msg: fmt.Sprintf("unknown ecall %d", in.Imm)}
		}
		if c.Stop != StopNone {
			c.PC = next
			return false
		}

	case isa.OpMRET:
		if c.InHandler {
			c.InHandler = false
			next = c.EPC
		}
	}

	c.PC = next
	return true
}

// Run executes until the CPU stops or maxInstructions retire (0 means
// unlimited). It returns the stop reason.
func (c *CPU) Run(maxInstructions uint64) StopReason {
	start := c.Cycles
	for c.Stop == StopNone {
		if maxInstructions > 0 && c.Cycles-start >= maxInstructions {
			c.Stop = StopBudget
			break
		}
		if !c.Step() {
			break
		}
	}
	return c.Stop
}

// Shift semantics match the symbolic expression layer (and SMT-LIB):
// amounts >= 32 produce 0 (or all sign bits for arithmetic shifts).
func shl(v, sh uint32) uint32 {
	if sh >= 32 {
		return 0
	}
	return v << sh
}

func shr(v, sh uint32) uint32 {
	if sh >= 32 {
		return 0
	}
	return v >> sh
}

func sra(v, sh uint32) uint32 {
	if sh >= 32 {
		sh = 31
	}
	return uint32(int32(v) >> sh)
}

func divu(x, y uint32) uint32 {
	if y == 0 {
		return ^uint32(0)
	}
	return x / y
}

func remu(x, y uint32) uint32 {
	if y == 0 {
		return x
	}
	return x % y
}

func b2u(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

func loadSize(op isa.Opcode) int {
	switch op {
	case isa.OpLW:
		return 4
	case isa.OpLH, isa.OpLHU:
		return 2
	default:
		return 1
	}
}

func storeSize(op isa.Opcode) int {
	switch op {
	case isa.OpSW:
		return 4
	case isa.OpSH:
		return 2
	default:
		return 1
	}
}
