package vm

// Snapshot is a complete copy of the CPU's architectural and memory
// state, used by the fuzzer's snapshot-based reset strategy.
type Snapshot struct {
	Regs       [16]uint32
	PC         uint32
	EPC        uint32
	InHandler  bool
	IRQEnabled bool
	Pending    uint32
	Cycles     uint64
	Mem        []byte
	Console    []byte
}

// Snapshot captures the CPU state. The stop state is not captured: a
// snapshot is only meaningful for a running machine.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		Regs:       c.Regs,
		PC:         c.PC,
		EPC:        c.EPC,
		InHandler:  c.InHandler,
		IRQEnabled: c.IRQEnabled,
		Pending:    c.pending,
		Cycles:     c.Cycles,
		Mem:        make([]byte, len(c.Mem)),
		Console:    append([]byte(nil), c.Console...),
	}
	copy(s.Mem, c.Mem)
	return s
}

// RestoreSnapshot overwrites the CPU state from a snapshot and clears
// any stop condition.
func (c *CPU) RestoreSnapshot(s *Snapshot) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.EPC = s.EPC
	c.InHandler = s.InHandler
	c.IRQEnabled = s.IRQEnabled
	c.pending = s.Pending
	c.Cycles = s.Cycles
	copy(c.Mem, s.Mem)
	c.Console = append(c.Console[:0], s.Console...)
	c.Stop = StopNone
	c.Fault = nil
}
