package bench

import (
	"fmt"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/rtl"
	"hardsnap/internal/sim"
	"hardsnap/internal/target"
	"hardsnap/internal/verilog"
	"hardsnap/internal/vtime"
)

// e16BusySrc is the busy-logic workload: every node switches every
// cycle — a free-running LFSR fanning out through arithmetic, a case
// FSM and memory traffic — so activation cannot skip anything and the
// measured win is pure bytecode-vs-AST dispatch.
const e16BusySrc = `
module busy (
  input wire clk
);
  reg [31:0] lfsr;
  reg [31:0] acc;
  reg [1:0] st;
  reg [15:0] m [0:63];
  wire feedback = lfsr[31] ^ lfsr[21] ^ lfsr[1] ^ lfsr[0];
  wire [31:0] nxt = {lfsr[30:0], feedback};
  wire [31:0] mix = (nxt * 2654435761) ^ (acc >> 3);
  wire [15:0] folded = mix[31:16] ^ mix[15:0];
  wire [31:0] spread = {folded, folded ^ nxt[15:0]} + (acc << 1);
  always @(posedge clk) begin
    lfsr <= nxt == 0 ? 32'h1 : nxt;
    m[nxt[5:0]] <= folded;
    case (st)
      0: begin acc <= acc + mix; st <= 1; end
      1: begin acc <= acc ^ spread; st <= 2; end
      2: begin acc <= acc - nxt; st <= 3; end
      default: begin acc <= m[acc[5:0]] + acc; st <= 0; end
    endcase
  end
endmodule
`

// e16QuietPeriphs is the mostly-quiescent SoC: a handful of corpus
// peripherals sitting idle after power-on reset — the steady state of
// a firmware run that is executing instructions, not touching MMIO.
func e16QuietPeriphs(interp bool) []target.PeriphConfig {
	names := []string{"gpio", "timer", "uart", "crc32", "aes128"}
	cfgs := make([]target.PeriphConfig, len(names))
	for i, n := range names {
		cfgs[i] = target.PeriphConfig{
			Name:   fmt.Sprintf("p%d", i),
			Periph: n,
			Interp: interp,
		}
	}
	return cfgs
}

func e16BuildBusy(kind sim.EngineKind) (*sim.Simulator, error) {
	f, err := verilog.Parse(e16BusySrc)
	if err != nil {
		return nil, err
	}
	d, err := rtl.Elaborate(f, "busy", nil)
	if err != nil {
		return nil, err
	}
	s, err := sim.NewEngine(d, kind)
	if err != nil {
		return nil, err
	}
	// Non-zero seed so the LFSR actually runs.
	if err := s.Poke("lfsr", 0xACE1); err != nil {
		return nil, err
	}
	return s, s.EvalComb()
}

// e16Busy measures busy-logic cycles/sec on one engine.
func e16Busy(kind sim.EngineKind, cycles int) (float64, error) {
	s, err := e16BuildBusy(kind)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if err := s.StepCycle(); err != nil {
			return 0, err
		}
	}
	return float64(cycles) / time.Since(start).Seconds(), nil
}

// e16Quiet measures idle-SoC cycles/sec through the full target path.
func e16Quiet(interp bool, cycles int) (float64, error) {
	tgt, err := target.NewSimulator("e16", &vtime.Clock{}, e16QuietPeriphs(interp))
	if err != nil {
		return 0, err
	}
	// Warm-up settle: let any post-reset activity drain before timing.
	if err := tgt.Advance(16); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := tgt.Advance(uint64(cycles)); err != nil {
		return 0, err
	}
	return float64(cycles) / time.Since(start).Seconds(), nil
}

// e16Differential steps the busy design on both engines side by side
// and asserts cycle-exact snapshot identity.
func e16Differential(cycles int) error {
	si, err := e16BuildBusy(sim.EngineInterp)
	if err != nil {
		return err
	}
	sc, err := e16BuildBusy(sim.EngineCompiled)
	if err != nil {
		return err
	}
	for i := 0; i < cycles; i++ {
		if err := si.StepCycle(); err != nil {
			return err
		}
		if err := sc.StepCycle(); err != nil {
			return err
		}
	}
	a, b := si.Snapshot(), sc.Snapshot()
	for name, v := range a.Regs {
		if b.Regs[name] != v {
			return fmt.Errorf("differential: %s: interp %#x compiled %#x", name, v, b.Regs[name])
		}
	}
	for name, m := range a.Mems {
		for i, v := range m {
			if b.Mems[name][i] != v {
				return fmt.Errorf("differential: %s[%d]: interp %#x compiled %#x", name, i, v, b.Mems[name][i])
			}
		}
	}
	return nil
}

// e16Explore runs a small E11-style exploration and returns its
// outcome fingerprint — bugs, paths and virtual time hashed
// canonically — so E16 can prove engine choice never leaks into
// results.
func e16Explore(interp bool) (string, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:    scalingWorkload(4, 40),
		Peripherals: []target.PeriphConfig{{Name: "gpio0", Periph: "gpio"}},
		Interp:      interp,
		Engine: core.Config{
			Mode:            core.ModeHardSnap,
			MaxInstructions: 2_000_000,
		},
	})
	if err != nil {
		return "", err
	}
	rep, err := a.Engine.Run()
	if err != nil {
		return "", err
	}
	return core.Fingerprint(rep), nil
}

// E16 regenerates the RTL-engine study: cycles/sec of the interpreter
// vs compiled bytecode vs compiled+activation on a busy-logic design
// and a mostly-quiescent SoC, gated on the issue's speedup floors
// (>=5x busy, >=20x quiescent) and on cycle-exact + fingerprint
// identity. The gates make `make bench-sim` a regression tripwire: a
// semantics bug or a dispatch-loop pessimization fails the experiment
// rather than silently shifting every other table.
func E16() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "RTL engine: interpreter vs compiled bytecode vs event-driven activation",
		Columns: []string{"workload", "engine", "cycles/sec", "speedup"},
	}

	const busyCycles = 150_000
	busyInterp, err := e16Busy(sim.EngineInterp, busyCycles)
	if err != nil {
		return nil, err
	}
	busyFull, err := e16Busy(sim.EngineCompiledFull, busyCycles)
	if err != nil {
		return nil, err
	}
	busyComp, err := e16Busy(sim.EngineCompiled, busyCycles)
	if err != nil {
		return nil, err
	}

	const quietCycles = 60_000
	quietInterp, err := e16Quiet(true, quietCycles)
	if err != nil {
		return nil, err
	}
	quietComp, err := e16Quiet(false, quietCycles)
	if err != nil {
		return nil, err
	}

	row := func(workload, engine string, rate, base float64) {
		t.AddRow(workload, engine, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.1fx", rate/base))
	}
	row("busy-logic", "interpreter", busyInterp, busyInterp)
	row("busy-logic", "compiled (no activation)", busyFull, busyInterp)
	row("busy-logic", "compiled + activation", busyComp, busyInterp)
	row("quiescent SoC (5 periphs)", "interpreter", quietInterp, quietInterp)
	row("quiescent SoC (5 periphs)", "compiled + activation", quietComp, quietInterp)

	t.AddMetric("busy_interp", busyInterp, "cycles/sec")
	t.AddMetric("busy_compiled_full", busyFull, "cycles/sec")
	t.AddMetric("busy_compiled", busyComp, "cycles/sec")
	t.AddMetric("busy_speedup", busyComp/busyInterp, "x")
	t.AddMetric("quiet_interp", quietInterp, "cycles/sec")
	t.AddMetric("quiet_compiled", quietComp, "cycles/sec")
	t.AddMetric("quiet_speedup", quietComp/quietInterp, "x")

	// Gate 1: speedup floors.
	if s := busyComp / busyInterp; s < 5 {
		return nil, fmt.Errorf("E16 gate: busy-logic speedup %.1fx < 5x", s)
	}
	if s := quietComp / quietInterp; s < 20 {
		return nil, fmt.Errorf("E16 gate: quiescent-SoC speedup %.1fx < 20x", s)
	}

	// Gate 2: cycle-exact identity on the busy design.
	if err := e16Differential(5_000); err != nil {
		return nil, fmt.Errorf("E16 gate: %w", err)
	}
	t.Notes = append(t.Notes,
		"differential gate: 5000 busy cycles, compiled vs interpreter snapshots bit-identical")

	// Gate 3: exploration outcomes are engine-independent.
	fpInterp, err := e16Explore(true)
	if err != nil {
		return nil, err
	}
	fpComp, err := e16Explore(false)
	if err != nil {
		return nil, err
	}
	if fpInterp != fpComp {
		return nil, fmt.Errorf("E16 gate: exploration fingerprint differs (interp %s, compiled %s)",
			fpInterp[:12], fpComp[:12])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fingerprint gate: E11-style exploration identical on both engines (%s)", fpInterp[:12]))
	t.Notes = append(t.Notes,
		"wall-clock rates; virtual-time results are engine-independent by construction")
	return t, nil
}
