package bench

import (
	"fmt"
	"strings"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// maxWorkers caps the E11 worker sweep; cmd/hsbench lowers it via
// SetMaxWorkers (-workers flag) so the experiment stays honest on
// small machines and under -race.
var maxWorkers = 8

// SetMaxWorkers caps the worker counts the scaling experiment sweeps
// (values <= 0 leave the default).
func SetMaxWorkers(n int) {
	if n > 0 {
		maxWorkers = n
	}
}

// scalingWorkload builds the E4-style exploration workload rebalanced
// for parallel scaling: a short init prefix (the unavoidable serial
// seed phase), k symbolic branches (2^k paths), then a per-path MMIO
// work loop of the given weight, so the bulk of the exploration lives
// in the subtrees the workers divide.
func scalingWorkload(k, work int) string {
	src := fmt.Sprintf(`
_start:
		addi r10, r0, 20
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		li r9, 0xAB
		sw r9, 0(r8)       ; program the peripheral once
		li r1, 0x100
		addi r2, r0, %d
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`, k)
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, skip%d
		addi r7, r7, 1
skip%d:
`, i, i, i)
	}
	src += fmt.Sprintf(`
		addi r10, r0, %d
work:
		sw r7, 0(r8)       ; per-path hardware interaction
		lw r6, 0(r8)
		addi r10, r10, -1
		bne r10, r0, work
		halt
`, work)
	return src
}

// crcScalingWorkload is the E8-style counterpart: symbolic input
// bytes branch the tree, then every path streams its input through
// the CRC engine repeatedly — I/O-bound per-path work on a stateful
// peripheral.
func crcScalingWorkload(k, rounds int) string {
	src := fmt.Sprintf(`
_start:
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)       ; enable the CRC engine
		li r1, 0x100
		addi r2, r0, %d
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`, k)
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, cskip%d
		addi r7, r7, 1
cskip%d:
`, i, i, i)
	}
	src += fmt.Sprintf(`
		addi r10, r0, %d
feed:
		lbu r4, 0(r1)
		sw r4, 0(r8)       ; stream a byte into the CRC
		addi r10, r10, -1
		bne r10, r0, feed
		lw r6, 4(r8)       ; read the digest (not branched on)
		halt
`, rounds)
	return src
}

// e11Run runs one workload at one worker count.
func e11Run(fw string, pc target.PeriphConfig, workers int) (*core.Report, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:    fw,
		Peripherals: []target.PeriphConfig{pc},
		FPGA:        true,
		Engine: core.Config{
			Mode: core.ModeHardSnap,
			// Seeded random keeps the frontier wide, so the seed phase
			// reaches the fan-out width even at 8 workers (BFS would
			// drain the tree serially first on these tree shapes).
			Searcher:        symexec.NewRandom(1),
			MaxInstructions: 5_000_000,
			Workers:         workers,
		},
	})
	if err != nil {
		return nil, err
	}
	return a.Engine.Run()
}

func perWorkerBytes(rep *core.Report) string {
	if len(rep.Workers) == 0 {
		return "-"
	}
	cells := make([]string, len(rep.Workers))
	for i, w := range rep.Workers {
		cells[i] = fmt.Sprintf("%d", w.BytesMoved)
	}
	return strings.Join(cells, "/")
}

// E11 regenerates the parallel-exploration scaling study: paths per
// virtual second and solver-cache hit rate as the worker count grows,
// on an E4-style exploration workload and an E8-style CRC workload.
// (The issue tracker filed this as E10; E10 was already taken by the
// fast-forwarding study, so the scaling study is E11.)
func E11() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "parallel exploration scaling: sharded workers, shared snapshot store and solver cache",
		Columns: []string{"workload", "workers", "paths", "virtual time", "paths/vsec",
			"speedup", "cache hit", "per-worker snap bytes"},
		Notes: []string{
			"virtual time of a parallel run = serial seed phase + makespan of the deterministic subtree schedule",
			"path counts and bug sets are checked identical at every worker count (determinism contract)",
			"per-worker snapshot traffic comes from the virtual schedule, so it is reproducible run to run",
			"super-linear points are real: splitting the tree also shrinks each worker's active set, so random scheduling thrashes between far fewer states and pays far less context-switch snapshot traffic than one wide serial frontier",
		},
	}
	workloads := []struct {
		name string
		fw   string
		pc   target.PeriphConfig
	}{
		{"explore(E4-style)", scalingWorkload(6, 40), target.PeriphConfig{Name: "g", Periph: "gpio"}},
		{"crc(E8-style)", crcScalingWorkload(6, 30), target.PeriphConfig{Name: "crc0", Periph: "crc32"}},
	}
	sweep := []int{1, 2, 4, 8}
	for _, wl := range workloads {
		var base *core.Report
		for _, w := range sweep {
			if w > maxWorkers && w != 1 {
				continue
			}
			rep, err := e11Run(wl.fw, wl.pc, w)
			if err != nil {
				return nil, fmt.Errorf("E11 %s workers=%d: %w", wl.name, w, err)
			}
			if w == 1 {
				base = rep
			} else {
				if len(rep.Finished) != len(base.Finished) {
					return nil, fmt.Errorf("E11 %s: %d workers found %d paths, 1 worker found %d",
						wl.name, w, len(rep.Finished), len(base.Finished))
				}
				if len(rep.Bugs()) != len(base.Bugs()) {
					return nil, fmt.Errorf("E11 %s: bug sets differ across worker counts", wl.name)
				}
			}
			pathsPerSec := float64(len(rep.Finished)) / rep.VirtualTime.Seconds()
			speedup := float64(base.VirtualTime) / float64(rep.VirtualTime)
			hit := rep.SolverCache.HitRate()
			t.AddRow(wl.name, fmt.Sprintf("%d", w), fmt.Sprintf("%d", len(rep.Finished)),
				dur(rep.VirtualTime), fmt.Sprintf("%.0f", pathsPerSec),
				fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.0f%%", 100*hit),
				perWorkerBytes(rep))
			p := fmt.Sprintf("%s.workers%d.", wl.pc.Periph, w)
			t.AddMetric(p+"virt_time", float64(rep.VirtualTime.Nanoseconds()), "ns")
			t.AddMetric(p+"paths_per_vsec", pathsPerSec, "paths/s")
			t.AddMetric(p+"speedup", speedup, "x")
			t.AddMetric(p+"solver_cache_hit_rate", hit, "ratio")
			t.AddMetric(p+"solver_cache_hits", float64(rep.SolverCache.Hits), "ops")
			t.AddMetric(p+"solver_cache_misses", float64(rep.SolverCache.Misses), "ops")
			t.AddMetric(p+"seed_vt", float64(rep.SeedVirtualTime.Nanoseconds()), "ns")
			t.AddMetric(p+"solver_queries", float64(rep.Solver.Queries), "queries")
			t.AddMetric(p+"solver_wall_ns", float64(rep.Solver.WallNS), "ns")
			t.AddMetric(p+"solver_sliced", float64(rep.Solver.Sliced), "slices")
			t.AddMetric(p+"solver_model_hits", float64(rep.Solver.ModelHits), "ops")
			t.AddMetric(p+"solver_rewrites", float64(rep.Solver.Rewrites), "ops")
			t.AddMetric(p+"solver_incremental_reuses", float64(rep.Solver.IncrementalReuses), "ops")
			for _, wr := range rep.Workers {
				wp := fmt.Sprintf("%sworker%d.", p, wr.Worker)
				t.AddMetric(wp+"subtrees", float64(wr.Subtrees), "subtrees")
				t.AddMetric(wp+"paths", float64(wr.Paths), "paths")
				t.AddMetric(wp+"snapshot_bytes", float64(wr.BytesMoved), "bytes")
				t.AddMetric(wp+"hw_saves", float64(wr.HWSaves), "ops")
				t.AddMetric(wp+"hw_restores", float64(wr.HWRestores), "ops")
			}
		}
	}
	return t, nil
}
