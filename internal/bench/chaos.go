package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// e14Run runs the E11-style exploration workload at 4 workers with
// the given crash-safety knobs. The returned wall duration is host
// time (journaling and recovery are host-side costs; virtual time is
// part of the identity assertion instead).
func e14Run(journal string, resume *core.Campaign, chaos *core.ChaosSchedule) (*core.Report, time.Duration, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:    scalingWorkload(6, 40),
		Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
		FPGA:        true,
		Engine: core.Config{
			Mode:              core.ModeHardSnap,
			Searcher:          symexec.NewRandom(1),
			MaxInstructions:   5_000_000,
			Workers:           4,
			JournalPath:       journal,
			Resume:            resume,
			Chaos:             chaos,
			MaxWorkerRestarts: 200,
		},
	})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rep, err := a.Engine.Run()
	return rep, time.Since(start), err
}

// E14 regenerates the crash-safety study: journaling overhead, result
// identity under injected worker failures, and kill-recover-resume.
// Every leg must converge to the undisturbed run's fingerprint (bugs,
// paths AND virtual time) — a divergence fails the experiment rather
// than producing a row.
func E14() (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "crash-safe exploration: journal overhead, chaos recovery, kill + resume",
		Columns: []string{"leg", "paths", "virtual time", "identity", "restarts", "requeues",
			"journal", "recovery wall"},
		Notes: []string{
			"identity = fingerprint (per-path status/PC/steps, path count, virtual time) equals the undisturbed run's",
			"journal overhead is host wall time; virtual time is bit-identical by construction and asserted, not measured",
			"chaos events are planned per subtree index from a fixed seed, so the disturbed runs are reproducible",
			"the kill leg stops after 8 subtree completions the way SIGKILL would; the resume leg finishes from the journal",
		},
	}
	dir, err := os.MkdirTemp("", "hsbench-e14-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	clean, _, err := e14Run("", nil, nil)
	if err != nil {
		return nil, fmt.Errorf("E14 baseline: %w", err)
	}
	want := core.Fingerprint(clean)
	row := func(leg string, rep *core.Report, journalB uint64) {
		id := "identical"
		if core.Fingerprint(rep) != want {
			id = "DIVERGED"
		}
		jcell := "-"
		if journalB > 0 {
			jcell = fmt.Sprintf("%d B", journalB)
		}
		t.AddRow(leg, fmt.Sprintf("%d", len(rep.Finished)), dur(rep.VirtualTime), id,
			fmt.Sprintf("%d", rep.Recovery.WorkerRestarts),
			fmt.Sprintf("%d", rep.Recovery.Requeues),
			jcell, dur(rep.Recovery.RecoveryWall))
	}
	row("baseline (undisturbed)", clean, 0)

	// Leg 1: journaling overhead. Identity is asserted; the cost is
	// measured directly — the supervisor times every journal encode,
	// append, fsync and compaction (Recovery.JournalWall) — because an
	// A/B wall-clock comparison cannot resolve a cost this small above
	// host scheduling noise.
	jpath := filepath.Join(dir, "overhead.hsj")
	jrep, jWall, err := e14Run(jpath, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("E14 journal leg: %w", err)
	}
	if core.Fingerprint(jrep) != want {
		return nil, fmt.Errorf("E14: journaled run diverged from baseline")
	}
	overhead := float64(jrep.Recovery.JournalWall) / float64(jWall)
	row("journaled", jrep, jrep.Recovery.JournalBytes)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"journal overhead: %.1f%% host wall time (%v of journal work in a %v run; group-committed fsync every %d completions)",
		100*overhead, jrep.Recovery.JournalWall.Round(time.Millisecond),
		jWall.Round(time.Millisecond), 4))
	t.AddMetric("journal_overhead", overhead, "ratio")
	t.AddMetric("journal_wall", float64(jrep.Recovery.JournalWall.Nanoseconds()), "ns")
	t.AddMetric("journal_records", float64(jrep.Recovery.JournalRecords), "records")
	t.AddMetric("journal_bytes", float64(jrep.Recovery.JournalBytes), "bytes")

	// Leg 2: chaos identity. Panics, fatal worker deaths and hangs on
	// ~60% of subtrees' first attempts; supervision must converge to
	// the baseline fingerprint.
	crep, _, err := e14Run("", nil, &core.ChaosSchedule{
		Seed: 7, PanicRate: 0.2, KillRate: 0.2, HangRate: 0.2,
	})
	if err != nil {
		return nil, fmt.Errorf("E14 chaos leg: %w", err)
	}
	if core.Fingerprint(crep) != want {
		return nil, fmt.Errorf("E14: chaos run diverged from baseline")
	}
	row("chaos (panic+kill+hang)", crep, 0)
	t.AddMetric("chaos_worker_restarts", float64(crep.Recovery.WorkerRestarts), "restarts")
	t.AddMetric("chaos_requeues", float64(crep.Recovery.Requeues), "requeues")
	t.AddMetric("chaos_panics_recovered", float64(crep.Recovery.PanicsRecovered), "panics")
	t.AddMetric("chaos_heartbeat_deaths", float64(crep.Recovery.HeartbeatDeaths), "deaths")
	t.AddMetric("chaos_recovery_wall", float64(crep.Recovery.RecoveryWall.Nanoseconds()), "ns")

	// Leg 3: kill + resume. The first process journals and "dies" after
	// 8 subtree completions; a second process resumes the journal and
	// must finish with the baseline fingerprint. The latency metric is
	// the host time to come back from the dead: load the journal plus
	// re-run only what the first process had not completed.
	kpath := filepath.Join(dir, "killed.hsj")
	_, _, err = e14Run(kpath, nil, &core.ChaosSchedule{DieAfterSubtrees: 8})
	if !errors.Is(err, core.ErrInterrupted) {
		return nil, fmt.Errorf("E14 kill leg: got %v, want interruption", err)
	}
	resumeStart := time.Now()
	cam, err := core.LoadCampaign(kpath)
	if err != nil {
		return nil, fmt.Errorf("E14 resume leg: %w", err)
	}
	rrep, _, err := e14Run("", cam, nil)
	if err != nil {
		return nil, fmt.Errorf("E14 resume leg: %w", err)
	}
	resumeLatency := time.Since(resumeStart)
	if core.Fingerprint(rrep) != want {
		return nil, fmt.Errorf("E14: resumed run diverged from baseline")
	}
	row(fmt.Sprintf("killed after 8 + resumed (%d replayed)", rrep.Recovery.ResumedSubtrees),
		rrep, rrep.Recovery.JournalBytes)
	t.AddMetric("resume_replayed_subtrees", float64(rrep.Recovery.ResumedSubtrees), "subtrees")
	t.AddMetric("resume_latency", float64(resumeLatency.Nanoseconds()), "ns")
	t.AddMetric("baseline_virt_time", float64(clean.VirtualTime.Nanoseconds()), "ns")
	t.AddMetric("baseline_paths", float64(len(clean.Finished)), "paths")
	return t, nil
}
