package bench

import (
	"fmt"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/fuzz"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// fuzzWorkers is the parallel-worker count the E18 throughput row
// uses; cmd/hsbench lowers it via SetFuzzWorkers (-fuzz-workers flag)
// for constrained machines. Workers advance private virtual clocks,
// so the default is set by the makespan arithmetic the experiment
// wants to show, not by host core count.
var fuzzWorkers = 24

// SetFuzzWorkers caps the worker count E18 fuzzes with.
func SetFuzzWorkers(n int) {
	if n > 0 {
		fuzzWorkers = n
	}
}

// e18CrashFirmware is the identity workload: reachable bug (abort on
// first input byte 0xA5) behind the CRC engine, the configuration
// both the reference and the rebuilt fuzzer can exhaust within
// budget.
const e18CrashFirmware = `
_start:
		addi r10, r0, 400
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)
		ecall 6
		li r1, 0x800
		addi r2, r0, 2
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		sw r4, 0(r8)
poll:
		lw r5, 12(r8)
		bne r5, r0, poll
		lbu r4, 0(r1)
		addi r5, r0, 0xA5
		bne r4, r5, ok
		abort
ok:
		halt
`

// e18MagicFirmware is the hybrid workload: the bug hides behind a
// 32-bit magic compare, after device bring-up has checksummed a
// status byte through the CRC engine. Mutation alone faces a 2^32
// guard; symbolic execution finds the abort but pays for the whole
// init symbolically plus a hardware context switch per MMIO access;
// the hybrid loop snapshots past init, notices the one-sided branch,
// and solves the flip from a single concolic replay.
const e18MagicFirmware = `
_start:
		addi r10, r0, 400
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)
		addi r4, r0, 0x5A
		sw r4, 0(r8)
poll:
		lw r5, 12(r8)
		bne r5, r0, poll
		ecall 6
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lw r4, 0(r1)
		li r5, 0x44414548
		bne r4, r5, ok
		abort
ok:
		halt
`

var e18Periphs = []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}}

// E18 regenerates the hardware-speed hybrid fuzzing evaluation: the
// rebuilt fuzzer's throughput against the original map-based
// single-worker implementation, the crash-set identity gate, and the
// time-to-bug race between fuzz-only, symexec-only and hybrid on a
// magic-guarded bug.
func E18() (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "hybrid fuzzing: throughput, crash identity, time-to-bug",
		Columns: []string{"configuration", "execs", "virt time", "execs/vsec",
			"crashes", "solved", "verdict"},
		Notes: []string{
			"reference = the original map[uint64]bool single-worker fuzzer, frozen in fuzz.RunReference",
			"workers advance private virtual clocks; campaign virtual time is the makespan, so N workers scale execs/vsec ~N times",
			"time-to-bug race: same magic-guarded firmware, 'not found' scores +inf",
			"the reference reports every crashing exec; the identity gate compares (pc, stop) buckets after dedup",
		},
	}

	prog, err := core.Setup(core.SetupConfig{Firmware: e18MagicFirmware})
	if err != nil {
		return nil, err
	}

	// --- Throughput: reference vs rebuilt, same per-campaign budget.
	base := fuzz.Config{
		Program:     prog.Program,
		Peripherals: e18Periphs,
		Reset:       fuzz.ResetSnapshot,
		InputLen:    4,
		Seed:        11,
	}
	refCfg := base
	refCfg.MaxExecs = 200
	ref, err := fuzz.RunReference(refCfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("reference (map, 1 worker)", fmt.Sprintf("%d", ref.Execs),
		dur(ref.VirtTime), fmt.Sprintf("%.0f", ref.ExecsPerVirtSecond),
		fmt.Sprintf("%d", len(ref.Crashes)), "-", "baseline")
	t.AddMetric("reference.execs_per_vsec", ref.ExecsPerVirtSecond, "execs/s")

	oneCfg := base
	oneCfg.MaxExecs = 200
	one, err := fuzz.Run(oneCfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("bitmap, 1 worker", fmt.Sprintf("%d", one.Execs),
		dur(one.VirtTime), fmt.Sprintf("%.0f", one.ExecsPerVirtSecond),
		fmt.Sprintf("%d", len(one.Crashes)), "-",
		fmt.Sprintf("%.2fx", one.ExecsPerVirtSecond/ref.ExecsPerVirtSecond))
	t.AddMetric("bitmap1.execs_per_vsec", one.ExecsPerVirtSecond, "execs/s")

	parCfg := base
	parCfg.Workers = fuzzWorkers
	parCfg.MaxExecs = 50 * fuzzWorkers
	par, err := fuzz.Run(parCfg)
	if err != nil {
		return nil, err
	}
	speedup := par.ExecsPerVirtSecond / ref.ExecsPerVirtSecond
	if speedup < 10 {
		return nil, fmt.Errorf("E18 gate: parallel throughput %.1fx < 10x reference", speedup)
	}
	verdict := "PASS (>= 10x)"
	t.AddRow(fmt.Sprintf("bitmap, %d workers", fuzzWorkers),
		fmt.Sprintf("%d", par.Execs), dur(par.VirtTime),
		fmt.Sprintf("%.0f", par.ExecsPerVirtSecond),
		fmt.Sprintf("%d", len(par.Crashes)), "-",
		fmt.Sprintf("%.1fx — %s", speedup, verdict))
	t.AddMetric("parallel.workers", float64(par.Workers), "workers")
	t.AddMetric("parallel.execs_per_vsec", par.ExecsPerVirtSecond, "execs/s")
	t.AddMetric("parallel.speedup_vs_reference", speedup, "x")

	// --- Identity: single worker, fixed seed, reachable bug — the
	// rebuilt fuzzer must report exactly the reference's deduplicated
	// crash buckets.
	crashProg, err := core.Setup(core.SetupConfig{Firmware: e18CrashFirmware})
	if err != nil {
		return nil, err
	}
	idCfg := fuzz.Config{
		Program:     crashProg.Program,
		Peripherals: e18Periphs,
		Reset:       fuzz.ResetSnapshot,
		MaxExecs:    2000,
		InputLen:    2,
		Seeds:       [][]byte{{0xA4, 0x00}},
		Seed:        3,
	}
	idRef, err := fuzz.RunReference(idCfg)
	if err != nil {
		return nil, err
	}
	idNew, err := fuzz.Run(idCfg)
	if err != nil {
		return nil, err
	}
	if len(idRef.Crashes) == 0 {
		return nil, fmt.Errorf("E18 gate: identity reference found no crashes; gate is vacuous")
	}
	if !sameCrashBuckets(idRef.Crashes, idNew.Crashes) {
		return nil, fmt.Errorf("E18 gate: crash buckets differ (reference %d raw, rebuilt %d buckets)",
			len(idRef.Crashes), len(idNew.Crashes))
	}
	idVerdict := "PASS (identical buckets)"
	t.AddRow("identity: reference", fmt.Sprintf("%d", idRef.Execs), dur(idRef.VirtTime),
		fmt.Sprintf("%.0f", idRef.ExecsPerVirtSecond),
		fmt.Sprintf("%d", len(idRef.Crashes)), "-", "")
	t.AddRow("identity: bitmap, 1 worker", fmt.Sprintf("%d", idNew.Execs), dur(idNew.VirtTime),
		fmt.Sprintf("%.0f", idNew.ExecsPerVirtSecond),
		fmt.Sprintf("%d", len(idNew.Crashes)), "-", idVerdict)
	t.AddMetric("identity.match", 1, "bool")

	// --- Time-to-bug race on the magic guard.
	raceBase := fuzz.Config{
		Program:          prog.Program,
		Peripherals:      e18Periphs,
		Reset:            fuzz.ResetSnapshot,
		MaxExecs:         600,
		InputLen:         4,
		Seed:             11,
		StopAtFirstCrash: true,
	}
	fuzzOnly, err := fuzz.Run(raceBase)
	if err != nil {
		return nil, err
	}
	fuzzTime, fuzzCell := raceTime(fuzzOnly.TimeToFirstCrash, len(fuzzOnly.Crashes) > 0)
	t.AddRow("race: fuzz-only", fmt.Sprintf("%d", fuzzOnly.Execs), fuzzCell, "-",
		fmt.Sprintf("%d", len(fuzzOnly.Crashes)), "-", "")
	if len(fuzzOnly.Crashes) > 0 {
		t.AddMetric("race.fuzzonly_ns", float64(fuzzOnly.TimeToFirstCrash.Nanoseconds()), "ns")
	}

	symTime, symStates, err := e18SymexecOnly(prog.Program.Base)
	if err != nil {
		return nil, err
	}
	t.AddRow("race: symexec-only", fmt.Sprintf("%d paths", symStates), dur(symTime), "-",
		"1", "-", "")
	t.AddMetric("race.symexec_ns", float64(symTime.Nanoseconds()), "ns")

	hybridCfg := raceBase
	hybridCfg.Hybrid = true
	hybridCfg.FrontierK = 4
	hybrid, err := fuzz.Run(hybridCfg)
	if err != nil {
		return nil, err
	}
	hybridTime, hybridCell := raceTime(hybrid.TimeToFirstCrash, len(hybrid.Crashes) > 0)
	if hybridTime == 0 {
		return nil, fmt.Errorf("E18 gate: hybrid mode missed the magic-guarded bug")
	}
	if (fuzzTime != 0 && hybridTime >= fuzzTime) || hybridTime >= symTime {
		return nil, fmt.Errorf("E18 gate: hybrid time-to-bug %v not below fuzz-only %v / symexec-only %v",
			hybridTime, fuzzCell, symTime)
	}
	raceVerdict := "PASS (hybrid wins)"
	t.AddRow("race: hybrid", fmt.Sprintf("%d", hybrid.Execs), hybridCell, "-",
		fmt.Sprintf("%d", len(hybrid.Crashes)),
		fmt.Sprintf("%d", hybrid.SolvedSeeds), raceVerdict)
	if hybridTime != 0 {
		t.AddMetric("race.hybrid_ns", float64(hybridTime.Nanoseconds()), "ns")
		t.AddMetric("race.hybrid_vs_symexec_speedup", symTime.Seconds()/hybridTime.Seconds(), "x")
	}
	t.AddMetric("race.hybrid_concolic_runs", float64(hybrid.ConcolicRuns), "ops")
	t.AddMetric("race.hybrid_solved_seeds", float64(hybrid.SolvedSeeds), "seeds")
	return t, nil
}

// raceTime formats a time-to-bug cell, scoring "not found" as +inf.
func raceTime(d time.Duration, found bool) (time.Duration, string) {
	if !found {
		return 0, "not found (+inf)"
	}
	return d, dur(d)
}

func sameCrashBuckets(a, b []fuzz.Crash) bool {
	ak := make(map[fuzz.CrashKey]bool, len(a))
	for i := range a {
		ak[a[i].Key()] = true
	}
	bk := make(map[fuzz.CrashKey]bool, len(b))
	for i := range b {
		bk[b[i].Key()] = true
	}
	if len(ak) != len(bk) {
		return false
	}
	for k := range ak {
		if !bk[k] {
			return false
		}
	}
	return true
}

// e18SymexecOnly runs the full symbolic engine on the magic firmware
// (HardSnap mode, hardware in the loop) and returns the virtual time
// the exploration took to terminate with the abort path found.
func e18SymexecOnly(base uint32) (time.Duration, int, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:     e18MagicFirmware,
		FirmwareBase: base,
		Peripherals:  e18Periphs,
		Engine: core.Config{
			Mode:            core.ModeHardSnap,
			MaxInstructions: 5_000_000,
		},
	})
	if err != nil {
		return 0, 0, err
	}
	rep, err := a.Engine.Run()
	if err != nil {
		return 0, 0, err
	}
	aborted := 0
	for _, st := range rep.Finished {
		if st.Status == symexec.StatusAborted {
			aborted++
		}
	}
	if aborted == 0 {
		return 0, 0, fmt.Errorf("E18: symbolic exploration missed the magic abort")
	}
	return rep.VirtualTime, len(rep.Finished), nil
}
