// Package bench implements the experiment harness that regenerates
// every table and figure of the paper's evaluation (Section V).
// Each experiment returns a Table that cmd/hsbench prints and the
// top-level benchmarks cross-check; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// All durations are deterministic *virtual* time from the calibrated
// cost model in internal/vtime — the reproduction's substitute for the
// authors' physical testbed (see DESIGN.md, substitution table).
package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics are the experiment's machine-readable results, emitted
	// by `hsbench -json` so metric trajectories can be recorded
	// across revisions.
	Metrics []Metric
}

// Metric is one machine-readable measurement of an experiment.
type Metric struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddMetric records one machine-readable measurement (the Experiment
// field is filled from the table ID).
func (t *Table) AddMetric(name string, value float64, unit string) {
	t.Metrics = append(t.Metrics, Metric{
		Experiment: t.ID, Metric: name, Value: value, Unit: unit,
	})
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "hardware snapshot save/restore duration per peripheral and method", E1},
		{"E2", "snapshot duration vs design size (scan chain vs readback)", E2},
		{"E3", "I/O forwarding latency and execution speed per target", E3},
		{"E4", "benefit of hardware snapshotting for firmware analysis", E4},
		{"E4b", "context-switch cost vs driver I/O volume", E4b},
		{"E5", "consistency of concurrent-path analysis (Fig. 1)", E5},
		{"E6", "scan-chain instrumentation overhead", E6},
		{"E7", "multi-target state transfer", E7},
		{"E8", "fuzzing throughput: snapshot reset vs reboot", E8},
		{"E9", "ablation: state-selection heuristic vs context switches", E9},
		{"E10", "fast-forwarding: native init vs fully symbolic", E10},
		{"E11", "parallel exploration scaling: workers vs paths/sec and cache hit rate", E11},
		{"E12", "remote-protocol latency: batched/pipelined v3 vs one-op-per-frame v2", E12},
		{"E13", "solver optimization stack: effort and throughput with the stack on vs off", E13},
		{"E14", "crash-safe exploration: journal overhead, chaos recovery, kill + resume", E14},
		{"E15", "exploration as a service: farm identity and warm-pool admission", E15},
		{"E16", "RTL engine: interpreter vs compiled bytecode vs event-driven activation", E16},
		{"E17", "distributed exploration: N-node fan-out over the snapshot + solver fabric", E17},
		{"E18", "hybrid fuzzing: parallel-worker throughput, crash identity, time-to-bug", E18},
	}
}

// Lookup finds an experiment by (case-insensitive) ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
