package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/farm"
	"hardsnap/internal/target"
)

// E15 regenerates the exploration-as-a-service study: a job submitted
// to an hsfarm server over its wire protocol must produce the exact
// fingerprint of a standalone CLI run, and admission from the
// pre-warmed target pool must be at least 5x faster than a cold rig
// build. Both properties are gates — a divergence or a slow pool
// fails the experiment rather than producing a row.
func E15() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "exploration as a service: farm identity and warm-pool admission",
		Columns: []string{"leg", "paths", "virtual time", "identity", "admission"},
		Notes: []string{
			"identity = result fingerprint equals the standalone runner's (same Job, no farm)",
			"admission is host wall time from job acquire to a ready target: cold = elaborate the rig, warm = pop a recycled pooled target",
			"the farm journals parallel jobs and recycles targets to their power-on state between tenants; recycled rigs are digest-verified against the pristine boot image",
		},
	}
	dir, err := os.MkdirTemp("", "hsbench-e15-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	job := campaign.Job{
		Firmware:        scalingWorkload(6, 40),
		Peripherals:     []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
		FPGA:            true,
		Searcher:        "random",
		Workers:         4,
		MaxInstructions: 5_000_000,
	}

	standalone, err := campaign.Runner{}.Run(context.Background(), job, campaign.RunOptions{})
	if err != nil {
		return nil, fmt.Errorf("E15 standalone: %w", err)
	}
	t.AddRow("standalone runner", fmt.Sprint(standalone.Paths),
		fmt.Sprint(standalone.VirtualTime), "baseline", "-")

	f, err := farm.New(farm.Config{
		StateDir: dir,
		PoolSize: 1,
		Tenants:  map[string]farm.Budget{"bench": {}},
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	srv := farm.NewServer(f)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	c, err := farm.Dial(addr.String())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Jobs run back to back on one rig key: the first admission builds
	// the rig cold, every later one reuses the recycled pooled target.
	const warmJobs = 3
	for i := 0; i < 1+warmJobs; i++ {
		id, err := c.Submit("bench", job)
		if err != nil {
			return nil, fmt.Errorf("E15 submit %d: %w", i, err)
		}
		info, err := c.WaitJob(id, time.Millisecond)
		if err != nil {
			return nil, err
		}
		if info.Status != farm.StatusDone {
			return nil, fmt.Errorf("E15 job %d: %s (%s)", i, info.Status, info.Error)
		}
		if info.Result.Fingerprint != standalone.Fingerprint {
			return nil, fmt.Errorf("E15 job %d DIVERGED from standalone:\nfarm:       %s\nstandalone: %s",
				i, info.Result.Fingerprint, standalone.Fingerprint)
		}
		leg, admission := "farm (cold rig build)", "cold"
		if info.Warm {
			leg, admission = "farm (warm pooled target)", "warm"
		}
		t.AddRow(leg, fmt.Sprint(info.Result.Paths),
			fmt.Sprint(info.Result.VirtualTime), "identical", admission)
		if i > 0 && !info.Warm {
			return nil, fmt.Errorf("E15 job %d was not admitted from the warm pool", i)
		}
	}

	st, err := c.PoolStats()
	if err != nil {
		return nil, err
	}
	if st.ColdBuilds == 0 || st.WarmHits == 0 {
		return nil, fmt.Errorf("E15 pool never cycled: %+v", st)
	}
	coldNS := float64(st.ColdNS) / float64(st.ColdBuilds)
	warmNS := float64(st.WarmNS) / float64(st.WarmHits)
	speedup := coldNS / warmNS
	t.Notes = append(t.Notes, fmt.Sprintf(
		"admission latency: cold %v mean over %d build(s), warm %v mean over %d hit(s) — %.0fx",
		time.Duration(coldNS).Round(time.Microsecond), st.ColdBuilds,
		time.Duration(warmNS).Round(time.Nanosecond), st.WarmHits, speedup))
	t.AddMetric("cold_admission_ns", coldNS, "ns")
	t.AddMetric("warm_admission_ns", warmNS, "ns")
	t.AddMetric("warm_admission_speedup", speedup, "x")
	t.AddMetric("farm_identity", 1, "bool")
	t.AddMetric("recycled_targets", float64(st.Recycled), "count")
	if speedup < 5 {
		return nil, fmt.Errorf("E15 warm admission only %.1fx faster than cold (want >= 5x): cold %v, warm %v",
			speedup, time.Duration(coldNS), time.Duration(warmNS))
	}
	return t, nil
}
