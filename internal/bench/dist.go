package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"hardsnap/internal/campaign"
	"hardsnap/internal/dist"
	"hardsnap/internal/remote"
	"hardsnap/internal/target"
)

// distLatency is the injected one-way link latency between the E17
// driver and its dist nodes — the same USB-debugger regime E12 models.
var distLatency = 500 * time.Microsecond

// distWorkload is E17's campaign: a seed phase that fills a register
// file with nonzero bulk (so bug snapshots carry real state, and so
// the fill lands in the seed snapshots the chunk ledger is pre-seeded
// from), k symbolic branch bits, a short per-path gpio work loop, and
// an abort on every path whose low two input bits are set — many
// bugs, clustered on a handful of distinct hardware states.
func distWorkload(k, fill, work int) string {
	src := fmt.Sprintf(`
_start:
		li r9, 0x40000100
		addi r10, r0, 0
		addi r11, r0, %d
		li r12, 0xA5A50000
fill:
		sw r10, 0(r9)
		add r13, r12, r10
		sw r13, 4(r9)
		addi r10, r10, 1
		bne r10, r11, fill
		li r1, 0x200
		addi r2, r0, %d
		addi r3, r0, 1
		ecall 1
		li r8, 0x40000000
		addi r7, r0, 0
`, fill, k)
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, dskip%d
		addi r7, r7, 1
dskip%d:
`, i, i, i)
	}
	src += fmt.Sprintf(`
		addi r10, r0, %d
dwork:
		sw r7, 0(r8)
		lw r6, 0(r8)
		addi r10, r10, -1
		bne r10, r0, dwork
		lbu r4, 0(r1)
		andi r5, r4, 3
		addi r6, r0, 3
		beq r5, r6, dbad
		halt
dbad:
		abort
`, work)
	return src
}

// latencyListener wraps Accept so the server side of every connection
// also pays the one-way link delay, mirroring E12's symmetric link.
type latencyListener struct {
	net.Listener
	delay time.Duration
}

func (l latencyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return remote.NewLatencyConn(c, l.delay), nil
}

// distFarm is one set of E17 worker nodes, reusable across runs: a
// re-run of the same job finds the campaign already resident (the
// prepare op is idempotent), so the second run measures a warm farm
// where handoff really is a bare subtree index — no seed-phase
// re-execution on any node.
type distFarm struct {
	addrs []string
	srvs  []*dist.Server
}

func newDistFarm(n int) (*distFarm, error) {
	f := &distFarm{addrs: make([]string, n), srvs: make([]*dist.Server, n)}
	for i := range f.addrs {
		f.srvs[i] = dist.NewServer()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		go f.srvs[i].Serve(latencyListener{ln, distLatency}) //nolint:errcheck
		f.addrs[i] = ln.Addr().String()
	}
	return f, nil
}

func (f *distFarm) close() {
	for _, s := range f.srvs {
		if s != nil {
			s.Close()
		}
	}
}

// E17 regenerates the distributed-exploration study: fanning one
// campaign's subtrees out to N dist nodes over a latency-injected
// loopback link must (a) reproduce the single-machine fingerprint
// exactly on every leg, (b) beat the 1-node configuration by >= 2x in
// paths/sec with 3 warm nodes, and (c) ship >= 5x fewer snapshot
// bytes over the shared digest fabric than with independent caches.
// All three are gates, not rows.
func E17() (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "distributed exploration: N nodes over a snapshot + solver-cache fabric",
		Columns: []string{"leg", "nodes", "farm", "paths", "bugs", "virtual time",
			"explore wall", "paths/sec", "snapshot bytes on wire"},
		Notes: []string{
			fmt.Sprintf("link: loopback TCP with %v one-way injected latency each side (E12's USB-debugger regime)", distLatency),
			"identity gate: every leg's fingerprint (bugs, paths, virtual time) equals the standalone runner's",
			"explore wall covers node connection through the last subtree result; driver-local setup, seed phase, and merge are the same for every leg and excluded",
			"cold: nodes re-run the deterministic seed phase at prepare; warm: the campaign is already resident and a handoff is a bare subtree index",
			"shared fabric: bug snapshots cross as content digests (chunks both sides provably hold are never re-sent); solver verdicts relay through the driver",
		},
	}

	job := campaign.Job{
		Firmware: distWorkload(7, 128, 1),
		Peripherals: []target.PeriphConfig{
			{Name: "gpio0", Periph: "gpio"},
			{Name: "rf0", Periph: "regfile", Params: map[string]uint64{"DEPTH": 128, "WIDTH": 32}},
		},
		Searcher:         "bfs",
		Workers:          8,
		SeedFanout:       48,
		MaxInstructions:  5_000_000,
		KeepBugSnapshots: true,
	}

	standalone, err := campaign.Runner{}.Run(context.Background(), job, campaign.RunOptions{})
	if err != nil {
		return nil, fmt.Errorf("E17 standalone: %w", err)
	}
	t.AddRow("standalone runner", "-", "-", fmt.Sprint(standalone.Paths),
		fmt.Sprint(len(standalone.Bugs)), fmt.Sprint(standalone.VirtualTime),
		"-", "-", "-")

	dial := func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		return remote.NewLatencyConn(c, distLatency), nil
	}

	runLeg := func(name, farmState string, farm *distFarm, independent bool) (time.Duration, uint64, error) {
		res, err := dist.Run(context.Background(), job, dist.Options{
			Nodes:           farm.addrs,
			Dial:            dial,
			Independent:     independent,
			SlotsPerNode:    1,
			NoLocalFallback: true,
		})
		if err != nil {
			return 0, 0, fmt.Errorf("E17 %s: %w", name, err)
		}
		if res.Fingerprint != standalone.Fingerprint {
			return 0, 0, fmt.Errorf("E17 %s DIVERGED from standalone:\ndistributed: %s\nstandalone:  %s",
				name, res.Fingerprint, standalone.Fingerprint)
		}
		var shipped uint64
		for _, nr := range res.Report.Nodes {
			shipped += nr.SnapBytesShipped
		}
		t.AddRow(name, fmt.Sprint(len(farm.addrs)), farmState, fmt.Sprint(res.Paths),
			fmt.Sprint(len(res.Bugs)), fmt.Sprint(res.VirtualTime),
			dur(res.ExploreWall), fmt.Sprintf("%.0f", float64(res.Paths)/res.ExploreWall.Seconds()),
			fmt.Sprint(shipped))
		return res.ExploreWall, shipped, nil
	}

	one, err := newDistFarm(1)
	if err != nil {
		return nil, err
	}
	defer one.close()
	three, err := newDistFarm(3)
	if err != nil {
		return nil, err
	}
	defer three.close()
	indepFarm, err := newDistFarm(3)
	if err != nil {
		return nil, err
	}
	defer indepFarm.close()

	// Cold legs: every node pays the seed-phase re-execution at
	// prepare. These measure the byte economy of the shared fabric.
	if _, _, err := runLeg("distributed, shared fabric", "cold", one, false); err != nil {
		return nil, err
	}
	_, sharedBytes, err := runLeg("distributed, shared fabric", "cold", three, false)
	if err != nil {
		return nil, err
	}
	_, indepBytes, err := runLeg("distributed, independent caches", "cold", indepFarm, true)
	if err != nil {
		return nil, err
	}

	// Warm legs: the campaign is resident from the cold run, so
	// prepare is a pure round trip and the farm's steady-state
	// throughput shows. The speedup gate compares these, taking the
	// best of two passes per configuration (the usual min-of-N guard
	// against scheduler noise in wall-clock smoke gates).
	warmLeg := func(farm *distFarm) (time.Duration, error) {
		best := time.Duration(0)
		for pass := 0; pass < 2; pass++ {
			w, _, err := runLeg("distributed, shared fabric", "warm", farm, false)
			if err != nil {
				return 0, err
			}
			if best == 0 || w < best {
				best = w
			}
		}
		return best, nil
	}
	// A wall-clock ratio on a shared box is noisy even with min-of-2
	// legs, so the gate gets up to three attempts and keeps the best
	// pair — a scheduler spike has to hit every attempt to fail it.
	var speedup float64
	var warm1, warm3 time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		w1, err := warmLeg(one)
		if err != nil {
			return nil, err
		}
		w3, err := warmLeg(three)
		if err != nil {
			return nil, err
		}
		if s := float64(w1) / float64(w3); attempt == 0 || s > speedup {
			speedup, warm1, warm3 = s, w1, w3
		}
		if speedup >= 2.1 {
			break
		}
	}
	t.AddMetric("three_node_speedup", speedup, "x")
	if speedup < 2 {
		return nil, fmt.Errorf("E17 3-node speedup %.2fx, want >= 2x (1 warm node %v, 3 warm nodes %v)",
			speedup, warm1, warm3)
	}

	if sharedBytes == 0 || indepBytes == 0 {
		return nil, fmt.Errorf("E17 byte accounting empty: shared=%d independent=%d", sharedBytes, indepBytes)
	}
	ratio := float64(indepBytes) / float64(sharedBytes)
	t.AddMetric("snapshot_byte_savings", ratio, "x")
	if ratio < 5 {
		return nil, fmt.Errorf("E17 shared fabric shipped %d snapshot bytes vs %d independent — %.1fx savings, want >= 5x",
			sharedBytes, indepBytes, ratio)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"gates: warm 3-node speedup %.1fx (>= 2x), shared-fabric snapshot bytes %.1fx lower than independent (>= 5x)",
		speedup, ratio))
	t.AddMetric("paths", float64(standalone.Paths), "count")
	return t, nil
}
