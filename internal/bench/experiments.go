package bench

import (
	"fmt"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/fuzz"
	"hardsnap/internal/periph"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// corpus4 is the paper's 4-peripheral evaluation corpus in complexity
// order.
var corpus4 = []string{"gpio", "timer", "uart", "aes128"}

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2f µs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%d ns", d.Nanoseconds())
	}
}

// snapshotCost measures a save+restore pair on a fresh target hosting
// one peripheral.
func snapshotCost(periphName string, fpga, readback bool) (time.Duration, uint, error) {
	clock := &vtime.Clock{}
	cfg := []target.PeriphConfig{{Name: "p0", Periph: periphName}}
	var tgt *target.Target
	var err error
	if fpga {
		tgt, err = target.NewFPGA("t", clock, cfg, readback)
	} else {
		tgt, err = target.NewSimulator("t", clock, cfg)
	}
	if err != nil {
		return 0, 0, err
	}
	// Put the peripheral into a non-trivial state first.
	if err := tgt.Advance(50); err != nil {
		return 0, 0, err
	}
	before := clock.Now()
	st, err := tgt.Save()
	if err != nil {
		return 0, 0, err
	}
	if err := tgt.Restore(st); err != nil {
		return 0, 0, err
	}
	return clock.Now() - before, tgt.StateBits(), nil
}

// E1 regenerates the snapshot-duration table: each corpus peripheral
// under the three snapshotting methods.
func E1() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "hardware snapshot save+restore duration (virtual time)",
		Columns: []string{"peripheral", "state bits", "simulator (CRIU)", "FPGA scan chain", "FPGA readback"},
		Notes: []string{
			"scan chain scales with state bits; readback is constant; CRIU pays a large fixed process freeze",
			"paper: scan chain in the tens-of-µs range, readback ~ms, CRIU ~tens of ms",
		},
	}
	for _, p := range corpus4 {
		simD, bits, err := snapshotCost(p, false, false)
		if err != nil {
			return nil, err
		}
		scanD, _, err := snapshotCost(p, true, false)
		if err != nil {
			return nil, err
		}
		rbD, _, err := snapshotCost(p, true, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(p, fmt.Sprintf("%d", bits), dur(simD), dur(scanD), dur(rbD))
		t.AddMetric(p+".state_bits", float64(bits), "bits")
		t.AddMetric(p+".simulator_save_restore", float64(simD.Nanoseconds()), "ns")
		t.AddMetric(p+".fpga_scan_save_restore", float64(scanD.Nanoseconds()), "ns")
		t.AddMetric(p+".fpga_readback_save_restore", float64(rbD.Nanoseconds()), "ns")
	}
	return t, nil
}

// E2 regenerates the snapshot-cost-vs-design-size figure using the
// parametric register file (DEPTH x 32-bit words).
func E2() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "snapshot duration vs design size (regfile sweep)",
		Columns: []string{"flops", "scan save+restore", "readback save+restore", "winner"},
		Notes: []string{
			"scan grows linearly in flops; the crossover where readback wins is the paper's motivation for supporting both",
		},
	}
	addRow := func(bits uint, scanD time.Duration, modeled bool) {
		rbD := 2 * vtime.FPGAReadbackCosts().SnapshotCost(bits)
		winner := "scan"
		if rbD < scanD {
			winner = "readback"
		}
		label := fmt.Sprintf("%d", bits)
		if modeled {
			label += " (modeled)"
		}
		t.AddRow(label, dur(scanD), dur(rbD), winner)
	}
	for _, depth := range []uint64{16, 64, 256, 1024} {
		clock := &vtime.Clock{}
		cfg := []target.PeriphConfig{{
			Name: "rf", Periph: "regfile",
			Params: map[string]uint64{"DEPTH": depth, "WIDTH": 32},
		}}
		scanTgt, err := target.NewFPGA("scan", clock, cfg, false)
		if err != nil {
			return nil, err
		}
		bits := scanTgt.StateBits()
		before := clock.Now()
		st, err := scanTgt.Save()
		if err != nil {
			return nil, err
		}
		if err := scanTgt.Restore(st); err != nil {
			return nil, err
		}
		addRow(bits, clock.Now()-before, false)
	}
	// Beyond ~32k flops the emergent per-bit cost is exactly the cost
	// model's (verified linear above); extrapolate to show the
	// crossover with readback.
	scanCosts := vtime.FPGAScanCosts()
	for _, bits := range []uint{131088, 524304, 1048592} {
		addRow(bits, 2*scanCosts.SnapshotCost(bits), true)
	}
	t.Notes = append(t.Notes,
		"rows marked (modeled) extrapolate the verified linear cost to sizes slow to shift in the host simulator")
	return t, nil
}

// E3 regenerates the I/O-forwarding-latency and execution-speed table.
func E3() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "I/O forwarding latency and execution speed per target",
		Columns: []string{"target", "reg read", "reg write", "cycles/sec (virtual)"},
		Notes: []string{
			"the FPGA wins on raw execution speed, the simulator on I/O latency (shared memory vs USB3)",
		},
	}
	const nOps = 1000
	for _, kind := range []string{"simulator", "fpga"} {
		clock := &vtime.Clock{}
		cfg := []target.PeriphConfig{{Name: "g", Periph: "gpio"}}
		var tgt *target.Target
		var err error
		if kind == "fpga" {
			tgt, err = target.NewFPGA("t", clock, cfg, false)
		} else {
			tgt, err = target.NewSimulator("t", clock, cfg)
		}
		if err != nil {
			return nil, err
		}
		port, err := tgt.Port("g")
		if err != nil {
			return nil, err
		}
		before := clock.Now()
		for i := 0; i < nOps; i++ {
			if _, err := port.ReadReg(0); err != nil {
				return nil, err
			}
		}
		readLat := (clock.Now() - before) / nOps
		before = clock.Now()
		for i := 0; i < nOps; i++ {
			if err := port.WriteReg(0, uint32(i)); err != nil {
				return nil, err
			}
		}
		writeLat := (clock.Now() - before) / nOps

		before = clock.Now()
		if err := tgt.Advance(nOps); err != nil {
			return nil, err
		}
		cycleD := (clock.Now() - before) / nOps
		cps := float64(time.Second) / float64(cycleD)
		t.AddRow(kind, dur(readLat), dur(writeLat), fmt.Sprintf("%.2e", cps))
	}
	return t, nil
}

// explorationFirmware builds firmware with an expensive init phase
// followed by k sequential symbolic branches (2^k paths), each path
// performing hardware I/O.
func explorationFirmware(k int) string {
	src := `
_start:
		addi r10, r0, 300
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		li r9, 0xAB
		sw r9, 0(r8)       ; program the peripheral once
		li r1, 0x100
		addi r2, r0, ` + fmt.Sprintf("%d", k) + `
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, skip%d
		addi r7, r7, 1
		sw r7, 0(r8)       ; per-path hardware interaction
skip%d:
`, i, i, i)
	}
	src += `
		halt
`
	return src
}

// E4 regenerates the exploration-speed comparison: HardSnap snapshots
// vs reboot-based consistent exploration, sweeping the path count.
func E4() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "multi-path firmware analysis: HardSnap vs naive-and-consistent reboot",
		Columns: []string{"paths", "hardsnap time", "record-replay time", "reboot time",
			"speedup vs reboot", "snap bytes", "switches skipped"},
		Notes: []string{
			"reboot cost grows with path count (each switch pays reboot + prefix replay); HardSnap pays only µs-scale restores",
			"record-replay (the related-work alternative) avoids reboots but re-issues every recorded I/O per switch",
			"snap bytes / switches skipped are the HardSnap mode's snapshot link traffic and generation-proven redundant save+restore operations",
		},
	}
	for _, k := range []int{2, 3, 4, 5} {
		fw := explorationFirmware(k)
		runMode := func(mode core.Mode) (*core.Report, error) {
			a, err := core.Setup(core.SetupConfig{
				Firmware:    fw,
				Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
				FPGA:        true,
				Engine: core.Config{
					Mode:            mode,
					Searcher:        symexec.BFS{},
					MaxInstructions: 5_000_000,
				},
			})
			if err != nil {
				return nil, err
			}
			return a.Engine.Run()
		}
		hs, err := runMode(core.ModeHardSnap)
		if err != nil {
			return nil, err
		}
		rr, err := runMode(core.ModeRecordReplay)
		if err != nil {
			return nil, err
		}
		rb, err := runMode(core.ModeNaiveReboot)
		if err != nil {
			return nil, err
		}
		hsPaths := len(hs.Finished)
		if hsPaths != len(rb.Finished) || hsPaths != len(rr.Finished) {
			return nil, fmt.Errorf("E4: path counts differ (%d vs %d vs %d)",
				hsPaths, len(rr.Finished), len(rb.Finished))
		}
		snaps := hs.Snapshots
		skipped := snaps.Manager.SavesSkipped + snaps.Manager.RestoresSkipped
		t.AddRow(fmt.Sprintf("%d", hsPaths), dur(hs.VirtualTime), dur(rr.VirtualTime), dur(rb.VirtualTime),
			fmt.Sprintf("%.1fx", float64(rb.VirtualTime)/float64(hs.VirtualTime)),
			fmt.Sprintf("%d", snaps.BytesMoved),
			fmt.Sprintf("%d", skipped))
		p := fmt.Sprintf("paths%d.", hsPaths)
		t.AddMetric(p+"hardsnap_vt", float64(hs.VirtualTime.Nanoseconds()), "ns")
		t.AddMetric(p+"record_replay_vt", float64(rr.VirtualTime.Nanoseconds()), "ns")
		t.AddMetric(p+"reboot_vt", float64(rb.VirtualTime.Nanoseconds()), "ns")
		t.AddMetric(p+"hardsnap_snapshot_bytes", float64(snaps.BytesMoved), "bytes")
		t.AddMetric(p+"hardsnap_snapshot_vt", float64(snaps.SnapshotTime.Nanoseconds()), "ns")
		t.AddMetric(p+"hardsnap_switches_skipped", float64(skipped), "ops")
		t.AddMetric(p+"hardsnap_dedup_hits", float64(snaps.Store.DedupHits), "ops")
	}
	return t, nil
}

// E4b shows why the paper rejects record-and-replay: its per-switch
// cost grows with the number of recorded interactions (Talebi et al.
// report 8800 I/O operations just to initialize one camera driver),
// while HardSnap's snapshot cost depends only on the hardware state
// size.
func E4b() (*Table, error) {
	t := &Table{
		ID:      "E4b",
		Title:   "context-switch cost vs driver I/O volume (HardSnap vs record-replay)",
		Columns: []string{"I/O ops per path", "hardsnap time", "record-replay time", "ratio"},
		Notes: []string{
			"workload: init loop issuing N register accesses, then one symbolic branch explored round-robin",
			"HardSnap stays flat; record-replay degrades linearly with interaction count",
		},
	}
	mkFirmware := func(n int) string {
		return fmt.Sprintf(`
_start:
		li r8, 0x40000000
		addi r9, r0, %d
ioloop:
		sw r9, 0(r8)
		lw r4, 0(r8)
		addi r9, r9, -1
		bne r9, r0, ioloop
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, b
		nop
b:
		sw r4, 0(r8)
		lw r5, 0(r8)
		halt
`, n)
	}
	for _, n := range []int{25, 100, 400} {
		fw := mkFirmware(n)
		runMode := func(mode core.Mode) (time.Duration, error) {
			a, err := core.Setup(core.SetupConfig{
				Firmware:    fw,
				Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
				FPGA:        true,
				Engine: core.Config{
					Mode:            mode,
					Searcher:        &symexec.RoundRobin{},
					MaxInstructions: 3_000_000,
				},
			})
			if err != nil {
				return 0, err
			}
			rep, err := a.Engine.Run()
			if err != nil {
				return 0, err
			}
			if got := rep.CountStatus(symexec.StatusHalted); got != 2 {
				return 0, fmt.Errorf("E4b mode %v: %d halted paths", mode, got)
			}
			return rep.VirtualTime, nil
		}
		hsD, err := runMode(core.ModeHardSnap)
		if err != nil {
			return nil, err
		}
		rrD, err := runMode(core.ModeRecordReplay)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", 2*n), dur(hsD), dur(rrD),
			fmt.Sprintf("%.1fx", float64(rrD)/float64(hsD)))
	}
	return t, nil
}

// consistencyFirmware: two paths write different values to the same
// peripheral and assert their own value reads back (Fig. 1).
const consistencyFirmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		li r8, 0x40000000
		beq r4, r0, pathB
pathA:
		li r5, 0xAAAA
		sw r5, 0(r8)
		nop
		nop
		nop
		nop
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2
		halt
pathB:
		li r5, 0x5555
		sw r5, 0(r8)
		nop
		nop
		nop
		nop
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2
		halt
`

// E5 regenerates the consistency experiment of Fig. 1.
func E5() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "concurrent-path consistency (two paths sharing one peripheral)",
		Columns: []string{"approach", "paths completed", "false positives", "verdict"},
		Notes: []string{
			"false positive = assertion failure caused purely by cross-path hardware interference",
		},
	}
	for _, mode := range []core.Mode{core.ModeHardSnap, core.ModeNaiveReboot, core.ModeNaiveShared} {
		a, err := core.Setup(core.SetupConfig{
			Firmware:    consistencyFirmware,
			Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
			Engine: core.Config{
				Mode:            mode,
				Searcher:        &symexec.RoundRobin{},
				MaxInstructions: 1_000_000,
			},
		})
		if err != nil {
			return nil, err
		}
		rep, err := a.Engine.Run()
		if err != nil {
			return nil, err
		}
		verdict := "consistent"
		if len(rep.Bugs()) > 0 {
			verdict = "CORRUPTED"
		}
		t.AddRow(mode.String(),
			fmt.Sprintf("%d", rep.CountStatus(symexec.StatusHalted)),
			fmt.Sprintf("%d", len(rep.Bugs())), verdict)
	}
	return t, nil
}

// E6 regenerates the instrumentation-overhead table.
func E6() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "scan-chain instrumentation overhead per peripheral",
		Columns: []string{"peripheral", "chain bits", "LoC before", "LoC after", "overhead"},
		Notes: []string{
			"overhead is added source lines; the paper reports comparable single-digit-to-moderate growth",
		},
	}
	for _, p := range corpus4 {
		spec, _ := periph.Lookup(p)
		f, err := spec.Parse()
		if err != nil {
			return nil, err
		}
		reports, err := scanchain.InstrumentAll(f, spec.Top, scanchain.Options{})
		if err != nil {
			return nil, err
		}
		var bits uint
		var before, after int
		for _, r := range reports {
			bits += r.ChainBits
			before += r.OriginalLines
			after += r.InstrumentedLines
		}
		t.AddRow(p, fmt.Sprintf("%d", bits), fmt.Sprintf("%d", before),
			fmt.Sprintf("%d", after),
			fmt.Sprintf("%.0f%%", 100*float64(after-before)/float64(before)))
	}
	return t, nil
}

// E7 regenerates the multi-target transfer demonstration: AES started
// on the FPGA, finished on the simulator, ciphertext equality checked
// against an FPGA-only run.
func E7() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "multi-target state transfer mid-computation (AES-128)",
		Columns: []string{"scenario", "transfer cost", "ciphertext match"},
	}
	cfg := []target.PeriphConfig{{Name: "aes0", Periph: "aes128"}}
	runOn := func(transferAfter int) ([4]uint32, time.Duration, error) {
		clock := &vtime.Clock{}
		fpga, err := target.NewFPGA("f", clock, cfg, false)
		if err != nil {
			return [4]uint32{}, 0, err
		}
		port, err := fpga.Port("aes0")
		if err != nil {
			return [4]uint32{}, 0, err
		}
		for i := 0; i < 4; i++ {
			port.WriteReg(uint32(0x10+4*i), 0x01020304*uint32(i+1))
			port.WriteReg(uint32(0x20+4*i), 0x1111111*uint32(i+1))
		}
		port.WriteReg(0x00, 1)
		active := fpga
		activePort := port
		var transferCost time.Duration
		if transferAfter >= 0 {
			if err := fpga.Advance(uint64(transferAfter)); err != nil {
				return [4]uint32{}, 0, err
			}
			sim, err := target.NewSimulator("s", clock, cfg)
			if err != nil {
				return [4]uint32{}, 0, err
			}
			before := clock.Now()
			if err := target.Transfer(fpga, sim); err != nil {
				return [4]uint32{}, 0, err
			}
			transferCost = clock.Now() - before
			active = sim
			activePort, err = sim.Port("aes0")
			if err != nil {
				return [4]uint32{}, 0, err
			}
		}
		for {
			status, err := activePort.ReadReg(0x04)
			if err != nil {
				return [4]uint32{}, 0, err
			}
			if status&2 != 0 {
				break
			}
			if err := active.Advance(1); err != nil {
				return [4]uint32{}, 0, err
			}
		}
		var ct [4]uint32
		for i := 0; i < 4; i++ {
			v, err := activePort.ReadReg(uint32(0x30 + 4*i))
			if err != nil {
				return [4]uint32{}, 0, err
			}
			ct[i] = v
		}
		return ct, transferCost, nil
	}

	reference, _, err := runOn(-1)
	if err != nil {
		return nil, err
	}
	for _, after := range []int{2, 5, 8} {
		ct, cost, err := runOn(after)
		if err != nil {
			return nil, err
		}
		match := "YES"
		if ct != reference {
			match = "NO (BUG)"
		}
		t.AddRow(fmt.Sprintf("transfer after %d rounds", after), dur(cost), match)
	}
	return t, nil
}

// fuzzFirmware is the E8 workload: expensive init, then parse one
// input byte through the CRC engine.
const fuzzFirmware = `
_start:
		addi r10, r0, 400
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)
		ecall 6
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		sw r4, 0(r8)
poll:
		lw r5, 12(r8)
		bne r5, r0, poll
		halt
`

// E8 regenerates the fuzzing-throughput comparison.
func E8() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "fuzzing throughput by reset strategy (CRC parser, 200 execs)",
		Columns: []string{"reset strategy", "virtual time", "execs/sec", "time in reset",
			"snap bytes", "delta restores"},
		Notes: []string{
			"snapshot restore replaces the full reboot embedded fuzzing otherwise needs between test cases",
			"delta restores write back only the state dirtied since the snapshot anchor instead of a full CRIU freeze+copy",
		},
	}
	prog, err := core.Setup(core.SetupConfig{Firmware: fuzzFirmware})
	if err != nil {
		return nil, err
	}
	var base *fuzz.Result
	for _, reset := range []fuzz.ResetStrategy{fuzz.ResetReboot, fuzz.ResetSnapshot} {
		res, err := fuzz.Run(fuzz.Config{
			Program:     prog.Program,
			Peripherals: []target.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
			Reset:       reset,
			MaxExecs:    200,
			InputLen:    4,
			Seed:        11,
		})
		if err != nil {
			return nil, err
		}
		if reset == fuzz.ResetReboot {
			base = res
		}
		name := reset.String()
		if reset == fuzz.ResetSnapshot {
			name = "snapshot (hardsnap)"
			if base != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("speedup: %.1fx",
					float64(base.VirtTime)/float64(res.VirtTime)))
			}
		}
		t.AddRow(name, dur(res.VirtTime),
			fmt.Sprintf("%.1f", res.ExecsPerVirtSecond), dur(res.ResetTime),
			fmt.Sprintf("%d", res.HWSnapshotBytes),
			fmt.Sprintf("%d", res.DeltaRestores))
		p := reset.String() + "."
		t.AddMetric(p+"virt_time", float64(res.VirtTime.Nanoseconds()), "ns")
		t.AddMetric(p+"execs_per_vsec", res.ExecsPerVirtSecond, "execs/s")
		t.AddMetric(p+"reset_vt", float64(res.ResetTime.Nanoseconds()), "ns")
		t.AddMetric(p+"snapshot_bytes", float64(res.HWSnapshotBytes), "bytes")
		t.AddMetric(p+"delta_restores", float64(res.DeltaRestores), "ops")
		t.AddMetric(p+"restores_skipped", float64(res.RestoresSkipped), "ops")
	}
	return t, nil
}

// E9 is an ablation over the state-selection heuristic: the searcher
// determines how often hardware context switches happen, and hence
// how much snapshot traffic the analysis pays — a ~5x spread between
// batched exploration (BFS on this workload) and per-instruction
// interleaving (round-robin).
func E9() (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "ablation: state-selection heuristic vs hardware context switches",
		Columns: []string{"searcher", "paths", "context switches", "snapshot time", "total time",
			"snap bytes", "switches skipped"},
		Notes: []string{
			"same 16-path firmware, HardSnap mode on the FPGA target",
			"context-switch count is the searcher's hardware cost driver: interleaving heuristics pay ~5x more snapshot traffic",
			"switches skipped counts save/restore operations the mutation generation proved redundant (no scan traffic, no vtime)",
		},
	}
	fw := explorationFirmware(4)
	searchers := []struct {
		name string
		mk   func() symexec.Searcher
	}{
		{"dfs", func() symexec.Searcher { return symexec.DFS{} }},
		{"bfs", func() symexec.Searcher { return symexec.BFS{} }},
		{"round-robin", func() symexec.Searcher { return &symexec.RoundRobin{} }},
		{"coverage", func() symexec.Searcher { return symexec.NewCoverage() }},
		{"random", func() symexec.Searcher { return symexec.NewRandom(7) }},
	}
	for _, s := range searchers {
		a, err := core.Setup(core.SetupConfig{
			Firmware:    fw,
			Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
			FPGA:        true,
			Engine: core.Config{
				Mode:            core.ModeHardSnap,
				Searcher:        s.mk(),
				MaxInstructions: 5_000_000,
			},
		})
		if err != nil {
			return nil, err
		}
		rep, err := a.Engine.Run()
		if err != nil {
			return nil, err
		}
		st := a.Target.Stats()
		skipped := rep.Snapshots.Manager.SavesSkipped + rep.Snapshots.Manager.RestoresSkipped
		t.AddRow(s.name,
			fmt.Sprintf("%d", len(rep.Finished)),
			fmt.Sprintf("%d", rep.Stats.ContextSwitches),
			dur(st.SnapshotTime),
			dur(rep.VirtualTime),
			fmt.Sprintf("%d", rep.Snapshots.BytesMoved),
			fmt.Sprintf("%d", skipped))
		p := s.name + "."
		t.AddMetric(p+"context_switches", float64(rep.Stats.ContextSwitches), "ops")
		t.AddMetric(p+"snapshot_vt", float64(st.SnapshotTime.Nanoseconds()), "ns")
		t.AddMetric(p+"total_vt", float64(rep.VirtualTime.Nanoseconds()), "ns")
		t.AddMetric(p+"snapshot_bytes", float64(rep.Snapshots.BytesMoved), "bytes")
		t.AddMetric(p+"switches_skipped", float64(skipped), "ops")
	}
	return t, nil
}

// E10 quantifies fast-forwarding (Table I): the deterministic init
// prefix executes concretely at native cost instead of paying
// symbolic interpretation, sweeping the init length.
func E10() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "fast-forwarding: native init + symbolic tail vs fully symbolic",
		Columns: []string{"init instructions", "fully symbolic", "fast-forwarded", "speedup"},
		Notes: []string{
			"compute-heavy init + one device write; the symbolic tail explores 2 paths after the snapshot hint",
			"native execution charges 20 ns/instruction vs 1 µs symbolic interpretation",
		},
	}
	mk := func(n int) string {
		return fmt.Sprintf(`
_start:
		li r8, 0x40000000
		li r10, %d
init:
		; compute-heavy bring-up (self-tests, zeroing, key schedule)
		xor r11, r11, r10
		addi r10, r10, -1
		bne r10, r0, init
		sw r11, 0(r8)      ; single device configuration write
		ecall 6
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		andi r4, r4, 1
		beq r4, r0, a
		nop
a:
		halt
`, n)
	}
	for _, n := range []int{1000, 4000, 16000} {
		fw := mk(n)
		runOne := func(ff bool) (time.Duration, error) {
			a, err := core.Setup(core.SetupConfig{
				Firmware:    fw,
				Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
				FPGA:        true,
				Engine:      core.Config{MaxInstructions: 10_000_000},
			})
			if err != nil {
				return 0, err
			}
			if ff {
				if _, err := a.FastForward(0); err != nil {
					return 0, err
				}
			}
			if _, err := a.Engine.Run(); err != nil {
				return 0, err
			}
			return a.Clock.Now(), nil
		}
		full, err := runOne(false)
		if err != nil {
			return nil, err
		}
		ffd, err := runOne(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", 3*n), dur(full), dur(ffd),
			fmt.Sprintf("%.1fx", float64(full)/float64(ffd)))
	}
	return t, nil
}
