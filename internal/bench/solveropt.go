package bench

import (
	"fmt"
	"sort"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// magicAbortFirmware: k symbolic input bytes folded into a running sum
// that is matched against cumulative magic values, aborting on a full
// match. Gives E13 a leg with a non-empty bug set, and — because every
// level's constraint shares the earlier bytes through the sum — path
// conditions form one growing slice, which is the shape the
// incremental context's guard reuse exists for.
func magicAbortFirmware(k int) string {
	src := fmt.Sprintf(`
_start:
		li r8, 0x40000000
		li r1, 0x100
		addi r2, r0, %d
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`, k)
	sum := 0
	for i := 0; i < k; i++ {
		sum += 0x41 + i
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		add r7, r7, r4
		addi r5, r0, %d
		bne r7, r5, out
		sw r4, 0(r8)       ; per-level hardware interaction
`, i, sum)
	}
	src += `
		ecall 4            ; magic matched: report the bug
out:
		halt
`
	return src
}

// thresholdFirmware: k symbolic bytes folded into a running sum with an
// unsigned-compare branch per level. Inequalities on growing sums can
// be neither concretized nor decoupled by the rewriter, so every
// query's path condition is one growing slice — the shape that
// exercises the incremental context's guard reuse.
func thresholdFirmware(k int) string {
	src := fmt.Sprintf(`
_start:
		li r8, 0x40000000
		li r1, 0x100
		addi r2, r0, %d
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`, k)
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		add r7, r7, r4
		addi r5, r0, %d
		bltu r7, r5, tok%d
		halt
tok%d:
		sw r5, 0(r8)       ; per-level hardware interaction (concrete:
		                   ; storing r7 would concretize the sum)
`, i, 128*(i+1), i, i)
	}
	src += `
		halt
`
	return src
}

// e13Run runs one workload with the optimization stack on or off and
// reports the run plus its host wall-clock time.
func e13Run(fw string, pc target.PeriphConfig, workers int, optOff bool) (*core.Report, time.Duration, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:    fw,
		Peripherals: []target.PeriphConfig{pc},
		FPGA:        true,
		Exec:        symexec.Config{DisableSolverOpt: optOff},
		Engine: core.Config{
			Mode:            core.ModeHardSnap,
			Searcher:        symexec.NewRandom(1),
			MaxInstructions: 5_000_000,
			Workers:         workers,
		},
	})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rep, err := a.Engine.Run()
	return rep, time.Since(start), err
}

// pathSignature is a deterministic fingerprint of a run's path set:
// one (status, PC, steps) triple per finished state, sorted.
func pathSignature(rep *core.Report) []string {
	sigs := make([]string, 0, len(rep.Finished))
	for _, st := range rep.Finished {
		sigs = append(sigs, fmt.Sprintf("%v@%#x+%d", st.Status, st.PC, st.Steps))
	}
	sort.Strings(sigs)
	return sigs
}

func sameSignature(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// E13 A/B-tests the solver's query-optimization stack (canonicalizing
// rewrite, independence slicing, counterexample reuse, incremental
// assumption-based SAT) against plain whole-query solving on the
// E4/E8/E11-style workloads. The identity gate requires byte-identical
// path signatures, bug counts and virtual times — the stack must change
// solver effort, never exploration — and the effort gate requires at
// least a 2x reduction in SAT conflicts+propagations on the
// exploration workloads.
func E13() (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "solver optimization stack: plain vs rewrite+slice+reuse+incremental",
		Columns: []string{"workload", "workers", "stack", "paths", "conflicts+props",
			"solver wall", "sliced", "model hits", "rewrites", "incr reuse", "effort"},
		Notes: []string{
			"identity gate: path signatures, bug sets and virtual times are identical with the stack on and off",
			"effort = (conflicts+propagations off) / (conflicts+propagations on); host wall times are informational (virtual time is unchanged by construction)",
		},
	}
	legs := []struct {
		name    string
		slug    string // metric-key prefix (leg names collide on periph kind)
		fw      string
		pc      target.PeriphConfig
		workers int
		gate    bool // enforce the >=2x effort gate
	}{
		{"explore(E4-style)", "explore", scalingWorkload(6, 40), target.PeriphConfig{Name: "g", Periph: "gpio"}, 1, true},
		{"explore(E4-style)", "explore", scalingWorkload(6, 40), target.PeriphConfig{Name: "g", Periph: "gpio"}, 4, true},
		{"crc(E8-style)", "crc", crcScalingWorkload(6, 30), target.PeriphConfig{Name: "crc0", Periph: "crc32"}, 1, false},
		{"magic-abort", "magic", magicAbortFirmware(4), target.PeriphConfig{Name: "g", Periph: "gpio"}, 1, false},
		{"threshold-chain", "threshold", thresholdFirmware(5), target.PeriphConfig{Name: "g", Periph: "gpio"}, 1, false},
	}
	for _, leg := range legs {
		off, offWall, err := e13Run(leg.fw, leg.pc, leg.workers, true)
		if err != nil {
			return nil, fmt.Errorf("E13 %s workers=%d off: %w", leg.name, leg.workers, err)
		}
		on, onWall, err := e13Run(leg.fw, leg.pc, leg.workers, false)
		if err != nil {
			return nil, fmt.Errorf("E13 %s workers=%d on: %w", leg.name, leg.workers, err)
		}

		// Identity gate: the stack may only change solver effort.
		if !sameSignature(pathSignature(off), pathSignature(on)) {
			return nil, fmt.Errorf("E13 %s workers=%d: path signatures differ with stack on vs off",
				leg.name, leg.workers)
		}
		if len(off.Bugs()) != len(on.Bugs()) {
			return nil, fmt.Errorf("E13 %s workers=%d: bug sets differ (%d vs %d)",
				leg.name, leg.workers, len(off.Bugs()), len(on.Bugs()))
		}
		if off.VirtualTime != on.VirtualTime {
			return nil, fmt.Errorf("E13 %s workers=%d: virtual times differ (%v vs %v)",
				leg.name, leg.workers, off.VirtualTime, on.VirtualTime)
		}

		effortOff := off.Solver.Conflicts + off.Solver.Propagations
		effortOn := on.Solver.Conflicts + on.Solver.Propagations
		effort := float64(effortOff) / float64(max64(effortOn, 1))
		if leg.gate && effort < 2 {
			return nil, fmt.Errorf("E13 %s workers=%d: effort reduction %.2fx < 2x (off %d, on %d)",
				leg.name, leg.workers, effort, effortOff, effortOn)
		}

		addLeg := func(label string, rep *core.Report, wall time.Duration, ratio string) {
			t.AddRow(leg.name, fmt.Sprintf("%d", leg.workers), label,
				fmt.Sprintf("%d", len(rep.Finished)),
				fmt.Sprintf("%d", rep.Solver.Conflicts+rep.Solver.Propagations),
				dur(time.Duration(rep.Solver.WallNS)),
				fmt.Sprintf("%d", rep.Solver.Sliced),
				fmt.Sprintf("%d", rep.Solver.ModelHits),
				fmt.Sprintf("%d", rep.Solver.Rewrites),
				fmt.Sprintf("%d", rep.Solver.IncrementalReuses),
				ratio)
			p := fmt.Sprintf("%s.workers%d.%s.", leg.slug, leg.workers, label)
			t.AddMetric(p+"conflicts", float64(rep.Solver.Conflicts), "ops")
			t.AddMetric(p+"propagations", float64(rep.Solver.Propagations), "ops")
			t.AddMetric(p+"queries", float64(rep.Solver.Queries), "queries")
			t.AddMetric(p+"cache_hits", float64(rep.Solver.CacheHits), "ops")
			t.AddMetric(p+"sliced", float64(rep.Solver.Sliced), "slices")
			t.AddMetric(p+"model_hits", float64(rep.Solver.ModelHits), "ops")
			t.AddMetric(p+"unsat_core_hits", float64(rep.Solver.UnsatCoreHits), "ops")
			t.AddMetric(p+"rewrites", float64(rep.Solver.Rewrites), "ops")
			t.AddMetric(p+"incremental_reuses", float64(rep.Solver.IncrementalReuses), "ops")
			t.AddMetric(p+"solver_wall_ns", float64(rep.Solver.WallNS), "ns")
			t.AddMetric(p+"solver_unknowns", float64(rep.Exec.SolverUnknowns), "queries")
			t.AddMetric(p+"wall_ns", float64(wall.Nanoseconds()), "ns")
			if wall > 0 {
				t.AddMetric(p+"paths_per_sec", float64(len(rep.Finished))/wall.Seconds(), "paths/s")
			}
			if wall > 0 {
				t.AddMetric(p+"solver_wall_share", float64(rep.Solver.WallNS)/float64(wall.Nanoseconds()), "ratio")
			}
		}
		addLeg("off", off, offWall, "1.0x")
		addLeg("on", on, onWall, fmt.Sprintf("%.1fx", effort))
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
