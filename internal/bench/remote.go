package bench

import (
	"fmt"
	"net"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/remote"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// remoteLatency is the injected one-way link latency of E12's
// high-latency sweep point (the paper's USB-debugger regime);
// cmd/hsbench overrides it via SetRemoteLatency (-latency flag).
var remoteLatency = 500 * time.Microsecond

// SetRemoteLatency sets the injected one-way link latency of the
// remote-protocol experiment's slow leg (values < 0 leave the
// default; 0 collapses the sweep to the loopback point).
func SetRemoteLatency(d time.Duration) {
	if d >= 0 {
		remoteLatency = d
	}
}

// e12Firmware is a small exploration workload with enough MMIO and
// context-switch traffic to expose the wire protocol: k symbolic
// branches fan out 2^k paths, and every path runs a write-heavy
// driver loop against the remote peripheral — the register-programming
// pattern (burst of stores, occasional status read) that batching is
// built for. v2 pays one round trip per store; v3 coalesces each
// burst into one frame and answers the read from the same exchange.
func e12Firmware() string {
	src := `
_start:
		li r8, 0x40000000
		li r1, 0x100
		addi r2, r0, 3
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`
	for i := 0; i < 3; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, skip%d
		addi r7, r7, 1
skip%d:
`, i, i, i)
	}
	src += `
		addi r10, r0, 8
work:
		sw r7, 0(r8)       ; program the peripheral: burst of stores
		sw r10, 0(r8)
		sw r7, 0(r8)
		sw r10, 0(r8)
		sw r7, 0(r8)
		sw r10, 0(r8)
		addi r10, r10, -1
		bne r10, r0, work
		lw r6, 0(r8)       ; one status read per path
		halt
`
	return src
}

func e12Periphs() []target.PeriphConfig {
	return []target.PeriphConfig{{Name: "g", Periph: "gpio"}}
}

// e12Result is one leg of the comparison.
type e12Result struct {
	rep        *core.Report
	wall       time.Duration
	wire       remote.ClientStats
	retransmit uint64
}

// e12Local runs the workload against an in-process simulator — the
// zero-wire control leg.
func e12Local() (*e12Result, error) {
	a, err := core.Setup(core.SetupConfig{
		Firmware:    e12Firmware(),
		Peripherals: e12Periphs(),
		Engine: core.Config{
			Mode:            core.ModeHardSnap,
			Searcher:        symexec.DFS{},
			MaxInstructions: 2_000_000,
			Workers:         1,
		},
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := a.Engine.Run()
	if err != nil {
		return nil, err
	}
	return &e12Result{rep: rep, wall: time.Since(start)}, nil
}

// e12Remote runs the same workload with the simulator hosted behind
// the v3 server on a localhost TCP socket, both directions of the
// link delayed by the given one-way latency. legacy selects the
// protocol-v2 cost model (one op per frame, no mirrors, no digest
// negotiation) as the before side of the comparison.
func e12Remote(latency time.Duration, legacy bool) (*e12Result, error) {
	root, err := target.NewSimulator("sim0", &vtime.Clock{}, e12Periphs())
	if err != nil {
		return nil, err
	}
	srv := remote.NewServer(root)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		_ = srv.ListenAndServeWith(ln, func(c net.Conn) net.Conn {
			return remote.NewLatencyConn(c, latency)
		})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	client, err := remote.Connect(remote.NewLatencyConn(conn, latency), nil)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	client.Legacy = legacy

	a, err := core.Setup(core.SetupConfig{
		Firmware:    e12Firmware(),
		Peripherals: e12Periphs(),
		Target:      client,
		Engine: core.Config{
			Mode:            core.ModeHardSnap,
			Searcher:        symexec.DFS{},
			MaxInstructions: 2_000_000,
			Workers:         1,
		},
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := a.Engine.Run()
	if err != nil {
		return nil, err
	}
	ws := client.WireStats()
	return &e12Result{
		rep:        rep,
		wall:       time.Since(start),
		wire:       ws,
		retransmit: ws.Retransmits,
	}, nil
}

// E12 regenerates the remote-protocol study: the same exploration run
// over an in-process target (control), the batched+pipelined v3
// protocol, and a v2-equivalent one-op-per-frame baseline, at zero
// injected latency and at the configured high-latency point. The
// analysis results must be identical on every leg — the protocol may
// only change how fast hardware is reached, never what the engine
// concludes.
func E12() (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "remote-protocol latency: batched/pipelined v3 vs one-op-per-frame v2",
		Columns: []string{"leg", "one-way latency", "frames", "retransmits",
			"state bytes", "paths", "bugs", "virtual time", "wall clock"},
		Notes: []string{
			"frames ≈ wire round trips: v2 pays one per register op, IRQ sample and snapshot chunk; v3 coalesces each engine step into one batch frame and piggybacks IRQ/generation/clock mirrors on every response",
			"state bytes count snapshot payload actually moved; v3's digest negotiation skips chunks the peer already holds, v2 re-transfers full state every save/restore",
			"path counts and bug sets are checked identical on every leg (the protocol must not change analysis results)",
			"wall clock on the latency legs is dominated by round trips, so the frame ratio predicts the speedup",
		},
	}

	local, err := e12Local()
	if err != nil {
		return nil, fmt.Errorf("E12 local: %w", err)
	}
	paths, bugs := len(local.rep.Finished), len(local.rep.Bugs())

	addRow := func(leg string, lat time.Duration, r *e12Result) {
		latCell := "-"
		if r.wire.Frames > 0 || lat > 0 {
			latCell = lat.String()
		}
		t.AddRow(leg, latCell,
			fmt.Sprintf("%d", r.wire.Frames),
			fmt.Sprintf("%d", r.retransmit),
			fmt.Sprintf("%d", r.wire.StateBytesSent+r.wire.StateBytesReceived),
			fmt.Sprintf("%d", len(r.rep.Finished)),
			fmt.Sprintf("%d", len(r.rep.Bugs())),
			dur(r.rep.VirtualTime), r.wall.Round(time.Microsecond).String())
	}
	addRow("local", 0, local)

	check := func(leg string, r *e12Result) error {
		if len(r.rep.Finished) != paths || len(r.rep.Bugs()) != bugs {
			return fmt.Errorf("E12 %s: found %d paths/%d bugs, local found %d/%d",
				leg, len(r.rep.Finished), len(r.rep.Bugs()), paths, bugs)
		}
		return nil
	}

	sweep := []time.Duration{0}
	if remoteLatency > 0 {
		sweep = append(sweep, remoteLatency)
	}
	for _, lat := range sweep {
		legacy, err := e12Remote(lat, true)
		if err != nil {
			return nil, fmt.Errorf("E12 v2 latency=%v: %w", lat, err)
		}
		if err := check("v2", legacy); err != nil {
			return nil, err
		}
		v3, err := e12Remote(lat, false)
		if err != nil {
			return nil, fmt.Errorf("E12 v3 latency=%v: %w", lat, err)
		}
		if err := check("v3", v3); err != nil {
			return nil, err
		}
		addRow("remote-v2", lat, legacy)
		addRow("remote-v3", lat, v3)

		ratio := float64(legacy.wire.Frames) / float64(max(v3.wire.Frames, 1))
		speedup := float64(legacy.wall) / float64(max(v3.wall, 1))
		stateRatio := float64(legacy.wire.StateBytesSent+legacy.wire.StateBytesReceived) /
			float64(max(v3.wire.StateBytesSent+v3.wire.StateBytesReceived, 1))
		if ratio < 5 {
			return nil, fmt.Errorf("E12 latency=%v: v3 must cut round trips ≥5x, got %.1fx (%d vs %d frames)",
				lat, ratio, legacy.wire.Frames, v3.wire.Frames)
		}
		// On the high-latency leg round trips dominate wall clock, so
		// the batching win must be visible in real time too. The
		// zero-latency point is loopback-noise bound and not asserted.
		if lat >= 100*time.Microsecond && v3.wall >= legacy.wall {
			return nil, fmt.Errorf("E12 latency=%v: v3 wall clock %v not better than v2 %v",
				lat, v3.wall, legacy.wall)
		}
		p := fmt.Sprintf("lat%dus.", lat.Microseconds())
		t.AddMetric(p+"v2_frames", float64(legacy.wire.Frames), "frames")
		t.AddMetric(p+"v3_frames", float64(v3.wire.Frames), "frames")
		t.AddMetric(p+"frame_reduction", ratio, "x")
		t.AddMetric(p+"v2_state_bytes",
			float64(legacy.wire.StateBytesSent+legacy.wire.StateBytesReceived), "bytes")
		t.AddMetric(p+"v3_state_bytes",
			float64(v3.wire.StateBytesSent+v3.wire.StateBytesReceived), "bytes")
		t.AddMetric(p+"state_byte_reduction", stateRatio, "x")
		t.AddMetric(p+"v2_wall", float64(legacy.wall.Nanoseconds()), "ns")
		t.AddMetric(p+"v3_wall", float64(v3.wall.Nanoseconds()), "ns")
		t.AddMetric(p+"wall_speedup", speedup, "x")
		t.AddMetric(p+"v3_chunks_skipped", float64(v3.wire.ChunksSkipped), "chunks")
	}
	t.AddMetric("paths", float64(paths), "paths")
	t.AddMetric("bugs", float64(bugs), "bugs")
	return t, nil
}
