package target

import (
	"errors"
	"fmt"
)

// ErrNoVisibility is returned by introspection methods (Peek,
// Simulator) on targets that execute the design opaquely: the FPGA
// target exposes only the register port, the interrupt line and the
// snapshot mechanism, exactly like the physical fabric behind a
// debugger.
var ErrNoVisibility = errors.New("target: no visibility into FPGA internals")

// ErrorClass partitions target-layer failures by how the caller must
// react to them.
type ErrorClass int

const (
	// Transient faults (dropped frame, corrupted frame detected by
	// the link CRC, timeout) are expected on a physical link and are
	// absorbed by retry with backoff; they never carry state.
	Transient ErrorClass = iota + 1
	// Fatal faults (dead link with no failover, protocol misuse,
	// RTL evaluation failure) terminate the affected analysis path.
	Fatal
	// Integrity faults mark snapshot data that failed validation
	// (bad checksum, truncation, unknown state names): applying it
	// would silently diverge the hardware, so it is rejected.
	Integrity
)

func (c ErrorClass) String() string {
	switch c {
	case Transient:
		return "transient"
	case Fatal:
		return "fatal"
	case Integrity:
		return "integrity"
	}
	return fmt.Sprintf("ErrorClass(%d)", int(c))
}

// Error is a classified target-layer failure.
type Error struct {
	Class ErrorClass
	Op    string
	Err   error
}

func (e *Error) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("target: %s: %v", e.Class, e.Err)
	}
	return fmt.Sprintf("target: %s: %s: %v", e.Op, e.Class, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

func classify(err error) ErrorClass {
	var te *Error
	if errors.As(err, &te) {
		return te.Class
	}
	return Fatal
}

// IsTransient reports whether err is a transient (retryable) fault.
func IsTransient(err error) bool { return err != nil && classify(err) == Transient }

// IsFatal reports whether err is a fatal (path-terminating) fault.
func IsFatal(err error) bool { return err != nil && classify(err) == Fatal }

// IsIntegrity reports whether err marks rejected snapshot data.
func IsIntegrity(err error) bool { return err != nil && classify(err) == Integrity }

func transientf(op, format string, args ...any) error {
	return &Error{Class: Transient, Op: op, Err: fmt.Errorf(format, args...)}
}

func fatalf(op, format string, args ...any) error {
	return &Error{Class: Fatal, Op: op, Err: fmt.Errorf(format, args...)}
}

func integrityf(op, format string, args ...any) error {
	return &Error{Class: Integrity, Op: op, Err: fmt.Errorf(format, args...)}
}
