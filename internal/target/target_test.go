package target

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"hardsnap/internal/sim"
	"hardsnap/internal/vtime"
)

func newSim(t *testing.T, clock *vtime.Clock, periphs ...PeriphConfig) *Target {
	t.Helper()
	if len(periphs) == 0 {
		periphs = []PeriphConfig{{Name: "gpio0", Periph: "gpio"}}
	}
	tg, err := NewSimulator("sim", clock, periphs)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func newFPGA(t *testing.T, clock *vtime.Clock, readback bool, periphs ...PeriphConfig) *Target {
	t.Helper()
	if len(periphs) == 0 {
		periphs = []PeriphConfig{{Name: "gpio0", Periph: "gpio"}}
	}
	tg, err := NewFPGA("fpga", clock, periphs, readback)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestSimulatorPortReadWrite(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	p, err := tg.Port("gpio0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteReg(0x00, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCAFE {
		t.Fatalf("readback %#x", v)
	}
	// Full visibility: the register is observable directly.
	out, err := tg.Peek("gpio0", "out")
	if err != nil {
		t.Fatal(err)
	}
	if out != 0xCAFE {
		t.Fatalf("peek out = %#x", out)
	}
	if _, err := tg.Port("nope"); err == nil {
		t.Fatal("port on unknown peripheral must fail")
	}
}

func TestSaveRestoreRoundtrip(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0x1111)
	st, err := tg.Save()
	if err != nil {
		t.Fatal(err)
	}
	p.WriteReg(0x00, 0x2222)
	if err := tg.Restore(st); err != nil {
		t.Fatal(err)
	}
	v, _ := p.ReadReg(0x00)
	if v != 0x1111 {
		t.Fatalf("restore lost state: %#x", v)
	}
	s := tg.Stats()
	if s.Snapshots != 1 || s.Restores != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFPGAScanSnapshotCost(t *testing.T) {
	clock := &vtime.Clock{}
	tg := newFPGA(t, clock, false)
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0xAB)

	bits := tg.StateBits()
	want := vtime.FPGAScanCosts().SnapshotCost(bits)

	before := clock.Now()
	st, err := tg.Save()
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - before; got != want {
		t.Fatalf("scan save cost %v, want %v (%d bits)", got, want, bits)
	}

	p.WriteReg(0x00, 0xCD)
	before = clock.Now()
	if err := tg.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - before; got != want {
		t.Fatalf("scan restore cost %v, want %v", got, want)
	}
	if v, _ := p.ReadReg(0x00); v != 0xAB {
		t.Fatalf("scan roundtrip lost state: %#x", v)
	}
}

func TestFPGAReadbackSnapshotCost(t *testing.T) {
	clock := &vtime.Clock{}
	tg := newFPGA(t, clock, true)
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0x77)

	before := clock.Now()
	st, err := tg.Save()
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now() - before; got != vtime.ReadbackFixed {
		t.Fatalf("readback save cost %v, want %v", got, vtime.ReadbackFixed)
	}
	p.WriteReg(0x00, 0x88)
	if err := tg.Restore(st); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.ReadReg(0x00); v != 0x77 {
		t.Fatalf("readback roundtrip lost state: %#x", v)
	}
}

func TestTransferFPGAToSimulator(t *testing.T) {
	clock := &vtime.Clock{}
	periphs := []PeriphConfig{
		{Name: "gpio0", Periph: "gpio"},
		{Name: "timer0", Periph: "timer"},
	}
	fp := newFPGA(t, clock, false, periphs...)
	sm := newSim(t, clock, periphs...)

	fpPort, _ := fp.Port("gpio0")
	fpPort.WriteReg(0x00, 0xFEED)
	if err := fp.Advance(7); err != nil {
		t.Fatal(err)
	}
	if err := Transfer(fp, sm); err != nil {
		t.Fatal(err)
	}
	smPort, _ := sm.Port("gpio0")
	v, err := smPort.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFEED {
		t.Fatalf("transferred state readback %#x", v)
	}
}

func TestFPGANoVisibility(t *testing.T) {
	tg := newFPGA(t, &vtime.Clock{}, false)
	if _, err := tg.Peek("gpio0", "out"); !errors.Is(err, ErrNoVisibility) {
		t.Fatalf("Peek error %v, want ErrNoVisibility", err)
	}
	if _, err := tg.Simulator("gpio0"); !errors.Is(err, ErrNoVisibility) {
		t.Fatalf("Simulator error %v, want ErrNoVisibility", err)
	}
	err := tg.AddAssertion(HWAssertion{Periph: "gpio0", Name: "n", Expr: "out == out"})
	if !errors.Is(err, ErrNoVisibility) {
		t.Fatalf("AddAssertion error %v, want ErrNoVisibility", err)
	}
}

func TestAssertionViolation(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	if err := tg.AddAssertion(HWAssertion{
		Periph: "gpio0", Name: "forbidden-value", Expr: "out != 32'hBAD",
	}); err != nil {
		t.Fatal(err)
	}
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0xBAD)
	// Holding the violating value must not re-report the episode.
	p.WriteReg(0x00, 0xBAD)
	vs := tg.TakeViolations()
	if len(vs) != 1 {
		t.Fatalf("%d violations, want 1", len(vs))
	}
	if vs[0].Name != "forbidden-value" || vs[0].Periph != "gpio0" {
		t.Fatalf("violation %+v", vs[0])
	}
	if tg.TakeViolations() != nil {
		t.Fatal("TakeViolations must clear")
	}
	// Recover, violate again: a new episode.
	p.WriteReg(0x00, 0)
	p.WriteReg(0x00, 0xBAD)
	if vs := tg.TakeViolations(); len(vs) != 1 {
		t.Fatalf("%d violations after recovery, want 1", len(vs))
	}

	if err := tg.AddAssertion(HWAssertion{Periph: "gpio0", Name: "bad", Expr: "no_such_sig == 0"}); err == nil {
		t.Fatal("assertion on unknown signal must fail at add time")
	}
}

func TestDeterministicFaultRuns(t *testing.T) {
	sched := FaultSchedule{
		Seed:          99,
		DropRate:      0.35,
		CorruptRate:   0.1,
		LatencyJitter: 10 * time.Microsecond,
		StallEvery:    3,
		StallTime:     time.Millisecond,
	}
	run := func() (time.Duration, Stats, uint32) {
		clock := &vtime.Clock{}
		tg := newFPGA(t, clock, false)
		tg.InjectFaults(sched)
		p, _ := tg.Port("gpio0")
		for i := 0; i < 10; i++ {
			if err := p.WriteReg(0x00, uint32(i)); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if _, err := p.ReadReg(0x00); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
		if err := tg.Advance(5); err != nil {
			t.Fatal(err)
		}
		v, _ := p.ReadReg(0x00)
		return clock.Now(), tg.Stats(), v
	}
	t1, s1, v1 := run()
	t2, s2, v2 := run()
	if t1 != t2 {
		t.Fatalf("virtual time diverged: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if v1 != v2 || v1 != 9 {
		t.Fatalf("final values %#x / %#x, want 9", v1, v2)
	}
	if s1.Retries == 0 || s1.FaultsInjected == 0 {
		t.Fatalf("schedule injected nothing: %+v", s1)
	}
}

func TestFailoverToStandby(t *testing.T) {
	clock := &vtime.Clock{}
	periphs := []PeriphConfig{
		{Name: "gpio0", Periph: "gpio"},
		{Name: "timer0", Periph: "timer"},
	}
	fp := newFPGA(t, clock, false, periphs...)
	sb := newSim(t, clock, periphs...)
	if err := fp.SetStandby(sb); err != nil {
		t.Fatal(err)
	}

	p, _ := fp.Port("gpio0")
	if err := p.WriteReg(0x00, 0x11); err != nil {
		t.Fatal(err)
	}
	// The link now survives exactly one more transaction, then dies
	// permanently — the persistent-failure scenario.
	fp.InjectFaults(FaultSchedule{Seed: 1, FailAfter: 1})
	if err := p.WriteReg(0x00, 0x22); err != nil {
		t.Fatal(err)
	}
	// This one exhausts retries, fails the health check and triggers
	// the transparent failover; the caller just sees success.
	if err := p.WriteReg(0x00, 0x33); err != nil {
		t.Fatalf("write across failover: %v", err)
	}

	if fp.Kind() != KindSimulator {
		t.Fatalf("kind after failover %q", fp.Kind())
	}
	st := fp.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers %d, want 1", st.Failovers)
	}
	if st.Retries == 0 {
		t.Fatal("failover without any retries")
	}
	// The journal replay must have reproduced the pre-failure writes;
	// the port handle stays valid on the adopted backend.
	v, err := p.ReadReg(0x00)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x33 {
		t.Fatalf("post-failover state %#x, want 0x33", v)
	}
	// The adopted backend has full visibility.
	if _, err := fp.Peek("gpio0", "out"); err != nil {
		t.Fatalf("peek after failover: %v", err)
	}
}

func TestPersistentFailureWithoutStandby(t *testing.T) {
	clock := &vtime.Clock{}
	fp := newFPGA(t, clock, false)
	fp.InjectFaults(FaultSchedule{Seed: 1, FailAfter: 1})
	p, _ := fp.Port("gpio0")
	if err := p.WriteReg(0x00, 0x11); err != nil {
		t.Fatal(err)
	}
	err := p.WriteReg(0x00, 0x22)
	if err == nil {
		t.Fatal("write on a dead link with no standby must fail")
	}
	if !IsFatal(err) {
		t.Fatalf("error %v, want fatal class", err)
	}
	// Only this path dies; further use reports the death immediately.
	if _, err := p.ReadReg(0x00); err == nil || !IsFatal(err) {
		t.Fatalf("dead target accepted an op: %v", err)
	}
}

func TestRestoreRejectsCorruptedState(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0x42)
	st, err := tg.Save()
	if err != nil {
		t.Fatal(err)
	}

	unknown := st.Clone()
	unknown["bogus"] = &sim.HWState{}
	if err := tg.Restore(unknown); !IsIntegrity(err) {
		t.Fatalf("unknown peripheral: %v, want integrity error", err)
	}

	badReg := st.Clone()
	badReg["gpio0"].Regs["no_such_register"] = 7
	if err := tg.Restore(badReg); !IsIntegrity(err) {
		t.Fatalf("unknown register: %v, want integrity error", err)
	}

	if err := tg.Restore(nil); !IsIntegrity(err) {
		t.Fatalf("nil state: %v, want integrity error", err)
	}

	// The rejected restores must not have touched the hardware.
	if v, _ := p.ReadReg(0x00); v != 0x42 {
		t.Fatalf("rejected restore mutated state: %#x", v)
	}
}

func TestEncodeDecodeState(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0x5A5A)
	st, _ := tg.Save()

	blob, err := EncodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("encode/decode roundtrip diverged")
	}

	// Every corruption mode must be rejected with an integrity error.
	flip := append([]byte(nil), blob...)
	flip[len(flip)-1] ^= 0x01
	if _, err := DecodeState(flip); !IsIntegrity(err) {
		t.Fatalf("payload corruption: %v", err)
	}
	if _, err := DecodeState(blob[:len(blob)-3]); !IsIntegrity(err) {
		t.Fatalf("truncation: %v", err)
	}
	if _, err := DecodeState(blob[:5]); !IsIntegrity(err) {
		t.Fatalf("truncated header: %v", err)
	}
	magic := append([]byte(nil), blob...)
	magic[0] = 0xFF
	if _, err := DecodeState(magic); !IsIntegrity(err) {
		t.Fatalf("bad magic: %v", err)
	}
	ver := append([]byte(nil), blob...)
	ver[4] = 9
	if _, err := DecodeState(ver); !IsIntegrity(err) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestStateClone(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	p, _ := tg.Port("gpio0")
	p.WriteReg(0x00, 0x10)
	st, _ := tg.Save()
	c := st.Clone()
	c["gpio0"].Regs["out"] = 0xFFFF
	if st["gpio0"].Regs["out"] == 0xFFFF {
		t.Fatal("Clone aliases the original")
	}
}

func TestResetRestoresPowerOnState(t *testing.T) {
	// The UART's baud divisor is loaded by the reset line; a warm
	// Reset must return to that power-on state, not to all-zeros.
	tg := newSim(t, &vtime.Clock{}, PeriphConfig{Name: "uart0", Periph: "uart"})
	div, err := tg.Peek("uart0", "bauddiv")
	if err != nil {
		t.Fatal(err)
	}
	if div == 0 {
		t.Fatal("power-on reset did not initialize bauddiv")
	}
	if err := tg.Advance(50); err != nil {
		t.Fatal(err)
	}
	if err := tg.Reset(); err != nil {
		t.Fatal(err)
	}
	got, _ := tg.Peek("uart0", "bauddiv")
	if got != div {
		t.Fatalf("bauddiv after warm reset %d, want %d", got, div)
	}
}

func TestFaultPortChargesVirtualTime(t *testing.T) {
	tg := newSim(t, &vtime.Clock{})
	inner, _ := tg.Port("gpio0")
	clock := &vtime.Clock{}
	fp := NewFaultPort(inner, clock, FaultSchedule{Seed: 3, DropRate: 1.0})
	err := fp.WriteReg(0, 1)
	if !IsTransient(err) {
		t.Fatalf("dropped frame: %v, want transient", err)
	}
	if clock.Now() < vtime.LinkTimeout {
		t.Fatalf("drop charged %v, want >= %v", clock.Now(), vtime.LinkTimeout)
	}
}
