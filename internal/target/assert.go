package target

import (
	"fmt"

	"hardsnap/internal/rtl"
	"hardsnap/internal/verilog"
)

// HWAssertion is a hardware property: a Verilog expression over one
// peripheral's internal signals that must hold (evaluate non-zero)
// every cycle. Assertions need full visibility, so only the simulator
// target accepts them.
type HWAssertion struct {
	// Periph names the peripheral instance the expression is scoped
	// to.
	Periph string
	// Name identifies the property in reports.
	Name string
	// Expr is the Verilog expression, e.g. `out != 32'hBAD`.
	Expr string
}

// Violation reports one failed hardware assertion.
type Violation struct {
	Target string
	Periph string
	Name   string
	Expr   string
	// Cycle is the target cycle count at detection.
	Cycle uint64
}

func (v Violation) String() string {
	return fmt.Sprintf("hardware assertion %q violated on %s.%s at cycle %d (%s)",
		v.Name, v.Target, v.Periph, v.Cycle, v.Expr)
}

// compiledAssert is a parsed assertion bound to one peripheral's
// design scope. failing latches the current violation level so each
// violation episode is reported once, not once per cycle.
type compiledAssert struct {
	src     HWAssertion
	expr    verilog.Expr
	scope   *rtl.Scope
	failing bool
}

func compileAssertion(a HWAssertion, inst *periphInst) (*compiledAssert, error) {
	expr, err := verilog.ParseExpr(a.Expr)
	if err != nil {
		return nil, fmt.Errorf("target: assertion %q: %w", a.Name, err)
	}
	ca := &compiledAssert{src: a, expr: expr, scope: inst.design.EvalScope()}
	// Validate eagerly: unknown signals fail at AddAssertion time,
	// not mid-run.
	if _, err := inst.sim.EvalAssertion(expr, ca.scope); err != nil {
		return nil, fmt.Errorf("target: assertion %q: %w", a.Name, err)
	}
	return ca, nil
}

// checkAssertions evaluates inst's assertions against the current
// state, appending new violations on a holds->fails transition.
func (t *Target) checkAssertions(inst *periphInst) error {
	for _, ca := range inst.asserts {
		holds, err := inst.sim.EvalAssertion(ca.expr, ca.scope)
		if err != nil {
			return fatalf("assertion "+ca.src.Name, "%v", err)
		}
		if !holds && !ca.failing {
			t.violations = append(t.violations, Violation{
				Target: t.name,
				Periph: inst.cfg.Name,
				Name:   ca.src.Name,
				Expr:   ca.src.Expr,
				Cycle:  t.stats.Cycles,
			})
		}
		ca.failing = !holds
	}
	return nil
}

// AddAssertion arms a hardware property on a simulator target.
// FPGA targets reject assertions: they require visibility the fabric
// does not provide.
func (t *Target) AddAssertion(a HWAssertion) error {
	if t.kind != KindSimulator {
		return fmt.Errorf("target %s: %w: assertions need the simulator target", t.name, ErrNoVisibility)
	}
	inst, ok := t.periphs[a.Periph]
	if !ok {
		return fmt.Errorf("target %s: assertion %q references unknown peripheral %q", t.name, a.Name, a.Periph)
	}
	ca, err := compileAssertion(a, inst)
	if err != nil {
		return err
	}
	inst.asserts = append(inst.asserts, ca)
	t.asserts = append(t.asserts, a)
	return nil
}

// TakeViolations returns and clears the accumulated violations.
func (t *Target) TakeViolations() []Violation {
	v := t.violations
	t.violations = nil
	return v
}
