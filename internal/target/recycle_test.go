package target

import (
	"reflect"
	"testing"
	"time"

	"hardsnap/internal/vtime"
)

// TestRecyclePristine: a heavily used target, recycled, must be
// indistinguishable from a fresh build — power-on hardware state,
// zero clock, zero stats, no assertions, no violations, no fault
// injection.
func TestRecyclePristine(t *testing.T) {
	clock := &vtime.Clock{}
	tgt, err := NewSimulator("pool0", clock, []PeriphConfig{
		{Name: "g", Periph: "gpio"},
		{Name: "t", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Use it hard: assertion, MMIO traffic, cycles, snapshots, faults.
	if err := tgt.AddAssertion(HWAssertion{
		Name: "never", Periph: "g", Expr: "out != out",
	}); err != nil {
		t.Fatal(err)
	}
	tgt.InjectFaults(FaultSchedule{Seed: 9, LatencyJitter: time.Millisecond})
	tgt.SetRetryPolicy(RetryPolicy{MaxRetries: 9})
	port, err := tgt.Port("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := port.WriteReg(0, 0xEE); err != nil {
		t.Fatal(err)
	}
	if err := tgt.Advance(25); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.Save(); err != nil {
		t.Fatal(err)
	}
	if len(tgt.TakeViolations()) == 0 {
		t.Fatal("workload produced no violations — test too tame")
	}
	if clock.Now() == 0 || tgt.Stats().Cycles == 0 {
		t.Fatal("workload left no trace to wipe")
	}

	if err := tgt.Recycle(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(tgt.snapshotRaw(), tgt.PowerOnState()) {
		t.Fatal("recycled hardware state differs from power-on")
	}
	if clock.Now() != 0 {
		t.Fatalf("clock not rewound: %v", clock.Now())
	}
	if tgt.Stats() != (Stats{}) {
		t.Fatalf("stats not zeroed: %+v", tgt.Stats())
	}
	if len(tgt.asserts) != 0 || tgt.HasAssertions() {
		t.Fatal("assertions survived recycle")
	}
	if len(tgt.TakeViolations()) != 0 {
		t.Fatal("violations survived recycle")
	}
	if tgt.faults != nil {
		t.Fatal("fault injection survived recycle")
	}
	if tgt.retry != (RetryPolicy{}) {
		t.Fatal("retry policy survived recycle")
	}
	if tgt.journal != nil || tgt.journalFull {
		t.Fatal("failover journal survived recycle")
	}
	if !reflect.DeepEqual(tgt.lastGood, tgt.powerOn) {
		t.Fatal("failover anchor not rewound to power-on")
	}

	// And it still works: same observable behavior as a fresh target.
	fresh, err := NewSimulator("fresh", &vtime.Clock{}, []PeriphConfig{
		{Name: "g", Periph: "gpio"},
		{Name: "t", Periph: "timer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*Target{{tgt, fresh}} {
		a, b := pair[0], pair[1]
		pa, _ := a.Port("g")
		pb, _ := b.Port("g")
		if err := pa.WriteReg(0, 0x5A); err != nil {
			t.Fatal(err)
		}
		if err := pb.WriteReg(0, 0x5A); err != nil {
			t.Fatal(err)
		}
		if err := a.Advance(10); err != nil {
			t.Fatal(err)
		}
		if err := b.Advance(10); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.snapshotRaw(), b.snapshotRaw()) {
			t.Fatal("recycled target diverged from fresh target on the same workload")
		}
		if a.Clock().Now() != b.Clock().Now() {
			t.Fatalf("virtual time diverged: %v vs %v", a.Clock().Now(), b.Clock().Now())
		}
	}
}

// TestRecycleDeadTarget: dead targets must be discarded, not pooled.
func TestRecycleDeadTarget(t *testing.T) {
	tgt, err := NewSimulator("d", &vtime.Clock{}, []PeriphConfig{{Name: "g", Periph: "gpio"}})
	if err != nil {
		t.Fatal(err)
	}
	tgt.dead = true
	if err := tgt.Recycle(); err == nil {
		t.Fatal("recycling a dead target must fail")
	}
}
