package target

import (
	"hardsnap/internal/bus"
	"hardsnap/internal/vtime"
)

// Interface is the execution-vehicle surface the analysis engine
// programs against. The concrete *Target implements it for in-process
// simulator and FPGA targets; internal/remote implements it for
// out-of-process targets reached over the wire (protocol v3), so the
// engine — including the parallel worker fan-out and the snapshot
// manager's generation-proven skips and delta restores — runs
// unchanged against either.
//
// The contract mirrors *Target exactly: Save/Restore/Reset re-anchor
// dirty tracking (AnchorSeq advances), Generation moves iff hardware
// state changed value, RestoreDelta returns (false, nil) when no
// incremental path exists and the caller must fall back to Restore.
type Interface interface {
	// Identity and plumbing.
	Name() string
	Kind() string
	Clock() *vtime.Clock
	Stats() Stats
	StateBits() uint
	Port(name string) (bus.Port, error)

	// Execution.
	Advance(n uint64) error
	Reset() error
	TakeViolations() []Violation

	// Snapshotting and its skip-proof bookkeeping.
	Generation() uint64
	AnchorSeq() uint64
	Save() (State, error)
	Restore(s State) error
	RestoreDelta(s State) (bool, error)
	AdoptState(s State) error

	// Robustness and worker fan-out.
	InjectFaults(s FaultSchedule)
	SetRetryPolicy(p RetryPolicy)
	FaultSchedule() (FaultSchedule, bool)
	SpawnWorker(name string, clock *vtime.Clock, stream int) (Interface, error)
}

var _ Interface = (*Target)(nil)

// SpawnWorker is Spawn behind the Interface: it exists because Spawn
// predates the interface and returns the concrete *Target.
func (t *Target) SpawnWorker(name string, clock *vtime.Clock, stream int) (Interface, error) {
	nt, err := t.Spawn(name, clock, stream)
	if err != nil {
		return nil, err
	}
	return nt, nil
}

// PendingViolations reports how many hardware property violations
// have accumulated without draining them (TakeViolations drains). The
// remote server piggybacks this count on every response so clients
// answer violation-free TakeViolations calls without a round trip.
func (t *Target) PendingViolations() int { return len(t.violations) }
