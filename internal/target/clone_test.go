package target

import (
	"reflect"
	"testing"
	"time"

	"hardsnap/internal/vtime"
)

func spawnParent(t *testing.T) *Target {
	t.Helper()
	tgt, err := NewSimulator("parent", &vtime.Clock{}, []PeriphConfig{
		{Name: "g", Periph: "gpio"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestSpawnPowerOnIdentical(t *testing.T) {
	parent := spawnParent(t)
	// Dirty the parent so the clone cannot accidentally inherit live
	// state: Spawn must come up at power-on, not at the parent's now.
	port, err := parent.Port("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := port.WriteReg(0, 0xAB); err != nil {
		t.Fatal(err)
	}
	clone, err := parent.Spawn("w0", &vtime.Clock{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone.snapshotRaw(), parent.PowerOnState()) {
		t.Fatal("spawned clone does not match parent power-on state")
	}
	// Clone is independent: writing it must not touch the parent.
	cp, err := clone.Port("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.WriteReg(0, 0x55); err != nil {
		t.Fatal(err)
	}
	v, err := port.ReadReg(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xAB {
		t.Fatalf("parent state changed by clone write: %#x", v)
	}
}

func TestSpawnAdoptState(t *testing.T) {
	parent := spawnParent(t)
	port, _ := parent.Port("g")
	if err := port.WriteReg(0, 0x77); err != nil {
		t.Fatal(err)
	}
	live, err := parent.Save()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := parent.Spawn("w0", &vtime.Clock{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := clone.Clock().Now()
	if err := clone.AdoptState(live); err != nil {
		t.Fatal(err)
	}
	if clone.Clock().Now() != before {
		t.Fatal("AdoptState must not charge virtual time")
	}
	cp, _ := clone.Port("g")
	v, err := cp.ReadReg(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x77 {
		t.Fatalf("adopted state not applied: %#x", v)
	}
}

// TestSpawnFaultStreams checks that sibling clones get decorrelated
// but reproducible fault PRNG streams: same stream number → same
// derived seed, different stream numbers → different seeds.
func TestSpawnFaultStreams(t *testing.T) {
	parent := spawnParent(t)
	parent.InjectFaults(FaultSchedule{
		Seed:          42,
		LatencyJitter: 3 * time.Millisecond,
	})
	c0a, err := parent.Spawn("a", &vtime.Clock{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c0b, err := parent.Spawn("b", &vtime.Clock{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := parent.Spawn("c", &vtime.Clock{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c0a.faults == nil || c1.faults == nil {
		t.Fatal("clones must inherit fault injection")
	}
	if c0a.faults.sched.Seed != c0b.faults.sched.Seed {
		t.Fatal("same stream must derive the same seed (reproducibility)")
	}
	if c0a.faults.sched.Seed == c1.faults.sched.Seed {
		t.Fatal("distinct streams must derive distinct seeds")
	}
	if c0a.faults.sched.Seed == parent.faults.sched.Seed {
		t.Fatal("clone must not reuse the parent's stream")
	}
	if c0a.faults.sched.LatencyJitter != parent.faults.sched.LatencyJitter {
		t.Fatal("non-seed schedule fields must be inherited")
	}
}
