package target

// Recycle wipes the target back to the state a fresh build comes up
// in, so a pool can hand it to the next job without paying the
// elaboration cost of Spawn: the hardware is restored to the power-on
// snapshot, assertions, violations, fault injection, retry policy,
// standby wiring and the failover journal are cleared, the cumulative
// stats are zeroed and the clock rewinds to zero. The mutation
// generation and anchor sequence keep counting — they only ever
// prove identity within one run, and each run anchors afresh.
//
// LiveState returns a cost-free deep copy of the current hardware
// state, without charging snapshot virtual time or touching the
// stats: orchestration-level bookkeeping (the pool's post-recycle
// integrity check), not an analysis operation.
func (t *Target) LiveState() State { return t.snapshotRaw() }

// Recycle fails only if the target is dead (an unrecoverable link or
// integrity failure); a dead target must be discarded, not pooled.
func (t *Target) Recycle() error {
	if t.dead {
		return fatalf("recycle", "target %s is dead after an unrecoverable failure", t.name)
	}
	for _, inst := range t.order {
		hw := t.powerOn[inst.cfg.Name]
		if err := inst.sim.Restore(hw); err != nil {
			return integrityf("recycle "+inst.cfg.Name, "%v", err)
		}
		inst.asserts = nil
	}
	t.asserts = nil
	t.violations = nil
	t.faults = nil
	t.retry = RetryPolicy{}
	t.standby = nil
	t.journal = nil
	t.journalFull = false
	t.lastGood = t.powerOn.Clone()
	t.stats = Stats{}
	t.reanchor(true)
	t.clock.Reset()
	return nil
}
