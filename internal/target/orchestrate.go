package target

import "fmt"

// Transfer moves the complete hardware state from one target to the
// other (paper E7): a Save at the source's snapshot cost followed by
// a Restore at the destination's. Both targets must host the same
// peripheral set.
func Transfer(from, to *Target) error {
	st, err := from.Save()
	if err != nil {
		return fmt.Errorf("target: transfer save from %s: %w", from.name, err)
	}
	if err := to.Restore(st); err != nil {
		return fmt.Errorf("target: transfer restore to %s: %w", to.name, err)
	}
	return nil
}

// SetStandby designates a simulator target as the failover vehicle:
// when this target's link dies persistently, the orchestrator
// restores the last consistent snapshot onto the standby, replays the
// operation journal, and transparently adopts it — ports, pending
// operations and the analysis keep running. The standby must host the
// same peripheral instances. Passing nil clears the standby.
//
// The current state is captured as the initial failover anchor.
func (t *Target) SetStandby(sb *Target) error {
	if sb == nil {
		t.standby = nil
		t.journal = nil
		t.journalFull = false
		return nil
	}
	if sb == t {
		return fmt.Errorf("target %s: cannot be its own standby", t.name)
	}
	if sb.kind != KindSimulator {
		return fmt.Errorf("target %s: standby must be a simulator target, got %s", t.name, sb.kind)
	}
	if len(sb.periphs) != len(t.periphs) {
		return fmt.Errorf("target %s: standby %s hosts %d peripherals, need %d",
			t.name, sb.name, len(sb.periphs), len(t.periphs))
	}
	for name := range t.periphs {
		if _, ok := sb.periphs[name]; !ok {
			return fmt.Errorf("target %s: standby %s does not host peripheral %q", t.name, sb.name, name)
		}
	}
	t.standby = sb
	t.lastGood = t.snapshotRaw()
	t.journal = nil
	t.journalFull = false
	return nil
}

// failover adopts the standby backend after a persistent link
// failure: restore the last consistent snapshot, replay the journal,
// swap the execution vehicle. With no standby (or an overflowed
// journal) the target dies and the caller receives a fatal error, so
// only the affected analysis path is killed.
func (t *Target) failover(op string, cause error) error {
	sb := t.standby
	if sb == nil || t.journalFull {
		t.dead = true
		reason := "no standby target configured"
		if t.journalFull {
			reason = "op journal overflowed since the last snapshot"
		}
		return fatalf(op, "target %s: persistent link failure (%s): %v", t.name, reason, cause)
	}
	t.standby = nil
	t.faults = nil // the dead link goes with the old backend

	// Adopt the standby's execution vehicle. Ports stay valid: they
	// resolve peripheral instances through the Target on every
	// operation.
	t.kind = sb.kind
	t.costs = sb.costs
	t.scan = sb.scan
	t.periphs = sb.periphs
	t.order = sb.order
	t.powerOn = sb.powerOn

	// Re-arm assertions on the adopted backend (now a simulator, so
	// they are accepted even if the old vehicle refused them).
	for _, inst := range t.order {
		inst.asserts = nil
	}
	asserts := t.asserts
	t.asserts = nil
	for _, a := range asserts {
		if err := t.AddAssertion(a); err != nil {
			t.dead = true
			return fatalf(op, "target %s: failover assertion re-arm: %v", t.name, err)
		}
	}

	// Bring the standby to the last consistent state and replay the
	// journal since then; the deterministic RTL reproduces the exact
	// pre-failure hardware state.
	if err := t.applyState(t.lastGood); err != nil {
		t.dead = true
		return fatalf(op, "target %s: failover restore: %v", t.name, err)
	}
	journal := t.journal
	t.journal = nil
	for _, j := range journal {
		var err error
		switch j.op {
		case jWrite:
			err = t.execWrite(j.periph, j.addr, j.val)
		case jRead:
			_, err = t.execRead(j.periph, j.addr)
		case jAdvance:
			err = t.execAdvance(j.n)
		}
		if err != nil {
			t.dead = true
			return fatalf(op, "target %s: failover journal replay: %v", t.name, err)
		}
	}
	// The replayed journal still describes the state since lastGood.
	t.journal = journal
	t.stats.Failovers++
	// The adopted backend's simulators carry fresh dirty tracking;
	// re-anchor so generations and delta restores stay sound.
	t.reanchor(true)
	return nil
}
