package target

import (
	"hardsnap/internal/sim"
)

// Scan-chain snapshotting: the FPGA target's state leaves and enters
// the fabric one bit per scan-clock edge through the chain the
// instrumentation pass stitched into the design. Nothing is modeled:
// the bits below are produced by actually clocking the instrumented
// RTL in scan mode, so the linear-in-flops cost the paper measures
// (E2) is emergent from the real chain length.

const (
	sigScanEnable = "scan_enable"
	sigScanIn     = "scan_in"
	sigScanOut    = "scan_out"
)

// scanSave shifts the whole chain out non-destructively: each bit
// captured at scan_out is fed straight back into scan_in, so after a
// full rotation the fabric state is unchanged. Chain position k holds
// layout[k]; the first bit out is the last layout position.
func (t *Target) scanSave(inst *periphInst) (*sim.HWState, error) {
	s := inst.sim
	d := inst.design

	// The debugger drives the pins, so it knows their levels without
	// fabric visibility.
	inputs := make(map[string]uint64, len(d.Inputs))
	for _, in := range d.Inputs {
		v, err := s.Peek(in.Name)
		if err != nil {
			return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
		}
		inputs[in.Name] = v
	}

	hw := &sim.HWState{
		Regs:   make(map[string]uint64),
		Mems:   make(map[string][]uint64, len(d.Memories)),
		Inputs: inputs,
	}
	for _, sig := range d.Signals {
		if sig.IsReg {
			hw.Regs[sig.Name] = 0
		}
	}
	for _, m := range d.Memories {
		hw.Mems[m.Name] = make([]uint64, m.Depth)
	}

	t.clock.Advance(t.costs.SnapshotFixed) // scan command setup
	if err := s.SetInput(sigScanEnable, 1); err != nil {
		return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
	}
	n := len(inst.layout)
	for i := 0; i < n; i++ {
		if err := s.EvalComb(); err != nil {
			return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
		}
		b, err := s.Peek(sigScanOut)
		if err != nil {
			return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
		}
		if err := s.SetInput(sigScanIn, b&1); err != nil {
			return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
		}
		if err := s.StepCycle(); err != nil {
			return nil, fatalf("scan save "+inst.cfg.Name, "%v", err)
		}
		t.clock.Advance(t.costs.SnapshotPerBit)
		ref := inst.layout[n-1-i]
		if b&1 != 0 {
			if ref.IsMem {
				hw.Mems[ref.Name][ref.Index] |= 1 << ref.Bit
			} else {
				hw.Regs[ref.Name] |= 1 << ref.Bit
			}
		}
	}
	return exitScanMode(s, inst, inputs, hw)
}

// scanRestore shifts a snapshot into the chain, bit for the last
// layout position first (the capture order), destroying whatever
// state the fabric held.
func (t *Target) scanRestore(inst *periphInst, hw *sim.HWState) error {
	s := inst.sim
	if hw == nil {
		hw = &sim.HWState{}
	}
	t.clock.Advance(t.costs.SnapshotFixed)
	if err := s.SetInput(sigScanEnable, 1); err != nil {
		return fatalf("scan restore "+inst.cfg.Name, "%v", err)
	}
	n := len(inst.layout)
	for i := 0; i < n; i++ {
		ref := inst.layout[n-1-i]
		var b uint64
		if ref.IsMem {
			if words := hw.Mems[ref.Name]; int(ref.Index) < len(words) {
				b = (words[ref.Index] >> ref.Bit) & 1
			}
		} else {
			b = (hw.Regs[ref.Name] >> ref.Bit) & 1
		}
		if err := s.SetInput(sigScanIn, b); err != nil {
			return fatalf("scan restore "+inst.cfg.Name, "%v", err)
		}
		if err := s.StepCycle(); err != nil {
			return fatalf("scan restore "+inst.cfg.Name, "%v", err)
		}
		t.clock.Advance(t.costs.SnapshotPerBit)
	}
	if _, err := exitScanMode(s, inst, hw.Inputs, nil); err != nil {
		return err
	}
	return nil
}

// exitScanMode leaves scan mode and re-drives functional pin levels,
// then settles combinational logic. hw is passed through on success.
func exitScanMode(s *sim.Simulator, inst *periphInst, inputs map[string]uint64, hw *sim.HWState) (*sim.HWState, error) {
	if err := s.SetInput(sigScanEnable, 0); err != nil {
		return nil, fatalf("scan "+inst.cfg.Name, "%v", err)
	}
	if err := s.SetInput(sigScanIn, 0); err != nil {
		return nil, fatalf("scan "+inst.cfg.Name, "%v", err)
	}
	for _, in := range inst.design.Inputs {
		if in.Name == sigScanEnable || in.Name == sigScanIn {
			continue
		}
		if v, ok := inputs[in.Name]; ok {
			if err := s.SetInput(in.Name, v); err != nil {
				return nil, fatalf("scan "+inst.cfg.Name, "%v", err)
			}
		}
	}
	if err := s.EvalComb(); err != nil {
		return nil, fatalf("scan "+inst.cfg.Name, "%v", err)
	}
	return hw, nil
}
