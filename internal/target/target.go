// Package target implements HardSnap's hardware targets: the
// execution vehicles that host peripheral RTL and expose it to the
// analysis through a register port, an interrupt line, clock
// advancement and whole-state snapshots (Save/Restore).
//
// Two targets exist, mirroring the paper's testbed:
//
//   - the simulator target executes the design in-process with full
//     visibility (Peek, VCD tracing via Simulator(), hardware
//     assertions) and CRIU-like structured-copy snapshots;
//   - the FPGA target executes the same RTL opaquely: state leaves
//     the fabric only through a real scan chain (bit-by-bit shifting
//     through the instrumented design) or through full-fabric
//     readback, and every MMIO access pays the debugger-link round
//     trip.
//
// Robustness is first-class: every link operation passes through a
// deterministic fault injector (FaultSchedule), transient faults are
// absorbed by bounded exponential-backoff retries, a ping-based
// health check detects persistent link death, and an orchestrator
// failover (SetStandby) transparently moves the analysis to a
// simulator target by restoring the last consistent snapshot and
// replaying the operation journal — the paper's E7 transfer mechanism
// used as a recovery path.
package target

import (
	"fmt"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/periph"
	"hardsnap/internal/rtl"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/sim"
	"hardsnap/internal/vtime"
)

// Target kinds.
const (
	KindSimulator = "simulator"
	KindFPGA      = "fpga"
)

// PeriphConfig selects one peripheral instance for a target: either a
// corpus peripheral by kind (Periph) or custom Verilog (Source/Top).
type PeriphConfig struct {
	// Name is the instance name (bus region, snapshot key).
	Name string
	// Periph is a corpus peripheral kind (gpio, timer, uart, ...).
	Periph string
	// Source is custom Verilog, used instead of Periph when set.
	Source string
	// Top is the top module of Source.
	Top string
	// Params overrides module parameters.
	Params map[string]uint64
	// Interp forces the interpreter RTL engine instead of the
	// compiled-bytecode default (debugging / differential runs).
	Interp bool
}

// Stats are cumulative target-side counters.
type Stats struct {
	// Cycles counts clock cycles commanded via Advance.
	Cycles uint64
	// IOOps counts forwarded register reads/writes.
	IOOps uint64
	// Snapshots / Restores count state movements.
	Snapshots uint64
	Restores  uint64
	// SnapshotTime is the virtual time spent saving and restoring.
	SnapshotTime time.Duration
	// SnapshotBytes counts the state bytes actually moved over the
	// link by saves and restores (delta restores move only dirty
	// bytes, so this is the honest traffic number).
	SnapshotBytes uint64
	// DeltaRestores counts restores served by the incremental
	// dirty-only path instead of a full state load.
	DeltaRestores uint64
	// Retries counts transient link faults absorbed by retry.
	Retries uint64
	// FaultsInjected counts faults the schedule fired.
	FaultsInjected uint64
	// Failovers counts transparent transfers to the standby target.
	Failovers uint64
}

// RetryPolicy bounds how hard the target fights transient link
// faults before declaring the link dead. Zero fields take defaults.
type RetryPolicy struct {
	// MaxRetries is the number of consecutive transient failures
	// tolerated between health checks (default 4).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per retry
	// (default vtime.LinkRetryBackoff).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth
	// (default vtime.LinkRetryBackoffMax).
	MaxBackoff time.Duration
	// HealthPings is how many pings the health check sends before
	// declaring the link persistently down (default 3).
	HealthPings int
}

func (p RetryPolicy) norm() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = vtime.LinkRetryBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = vtime.LinkRetryBackoffMax
	}
	if p.HealthPings <= 0 {
		p.HealthPings = 3
	}
	return p
}

// journalOp is one replayable hardware interaction since the last
// consistent snapshot; the journal makes failover exact.
type jop uint8

const (
	jWrite jop = iota + 1
	jRead
	jAdvance
)

type journalOp struct {
	op     jop
	periph string
	addr   uint32
	val    uint32
	n      uint64
}

// journalCap bounds failover memory; overflowing disables failover
// until the next snapshot re-anchors the journal.
const journalCap = 1 << 15

// periphInst is one peripheral hosted on a target.
type periphInst struct {
	cfg    PeriphConfig
	design *rtl.Design
	sim    *sim.Simulator
	// irqWired reports whether the block can ever drive its irq
	// output (static corpus metadata; custom sources are
	// conservatively assumed wired). Remote clients use it to answer
	// IRQ polls for constant-low lines without a round trip.
	irqWired bool
	// layout maps scan-chain bit positions to named state (scan-mode
	// FPGA only).
	layout  []scanchain.BitRef
	asserts []*compiledAssert
	// genBase is the simulator mutation generation last folded into
	// the target generation (see Target.Generation).
	genBase uint64
}

// Target hosts a set of peripherals on one execution vehicle.
type Target struct {
	name  string
	kind  string
	scan  bool // FPGA snapshots via real scan-chain shifting
	clock *vtime.Clock
	costs vtime.Costs

	periphs map[string]*periphInst
	order   []*periphInst

	stats      Stats
	violations []Violation
	asserts    []HWAssertion

	// gen is the target-level mutation generation: it advances iff
	// some hosted peripheral's state changed value. Equal generations
	// prove the hardware is bit-identical, which lets the snapshot
	// manager skip save/restore traffic entirely.
	gen uint64
	// anchorSeq counts re-anchorings of dirty tracking (every Save,
	// Restore, Reset, delta restore or failover). A delta restore is
	// only sound against the record captured at the current anchor;
	// callers compare this sequence to detect a stale anchor.
	anchorSeq uint64

	// Robustness state.
	faults      *injector
	retry       RetryPolicy
	standby     *Target
	journal     []journalOp
	journalFull bool
	lastGood    State
	powerOn     State
	dead        bool
}

// NewSimulator builds a simulator target hosting the peripherals:
// full visibility, cheap structured-copy snapshots.
func NewSimulator(name string, clock *vtime.Clock, periphs []PeriphConfig) (*Target, error) {
	return build(name, KindSimulator, clock, periphs, vtime.SimCosts(), false)
}

// NewFPGA builds an FPGA target hosting the peripherals. Snapshots
// use the inserted scan chain (real bit shifting through the
// instrumented design) or, when readback is set, the fixed-cost
// full-fabric readback path.
func NewFPGA(name string, clock *vtime.Clock, periphs []PeriphConfig, readback bool) (*Target, error) {
	costs := vtime.FPGAScanCosts()
	if readback {
		costs = vtime.FPGAReadbackCosts()
	}
	return build(name, KindFPGA, clock, periphs, costs, !readback)
}

func build(name, kind string, clock *vtime.Clock, periphs []PeriphConfig, costs vtime.Costs, instrument bool) (*Target, error) {
	if clock == nil {
		return nil, fmt.Errorf("target %s: nil clock", name)
	}
	if len(periphs) == 0 {
		return nil, fmt.Errorf("target %s: no peripherals configured", name)
	}
	t := &Target{
		name:    name,
		kind:    kind,
		scan:    instrument,
		clock:   clock,
		costs:   costs,
		periphs: make(map[string]*periphInst, len(periphs)),
	}
	for _, cfg := range periphs {
		if cfg.Name == "" {
			return nil, fmt.Errorf("target %s: peripheral with empty instance name", name)
		}
		if _, dup := t.periphs[cfg.Name]; dup {
			return nil, fmt.Errorf("target %s: duplicate peripheral instance %q", name, cfg.Name)
		}
		inst, err := buildPeriph(cfg, instrument)
		if err != nil {
			return nil, fmt.Errorf("target %s: %w", name, err)
		}
		t.periphs[cfg.Name] = inst
		t.order = append(t.order, inst)
	}
	t.powerOn = t.snapshotRaw()
	t.lastGood = t.powerOn.Clone()
	return t, nil
}

func buildPeriph(cfg PeriphConfig, instrument bool) (*periphInst, error) {
	var (
		d       *rtl.Design
		reports map[string]*scanchain.Report
		top     string
		err     error
	)
	irqWired := true
	if cfg.Source != "" {
		top = cfg.Top
		if top == "" {
			return nil, fmt.Errorf("peripheral %s: custom Source requires Top", cfg.Name)
		}
		d, reports, err = periph.BuildCustom(cfg.Name, cfg.Source, top, cfg.Params, instrument)
	} else {
		spec, ok := periph.Lookup(cfg.Periph)
		if !ok {
			return nil, fmt.Errorf("peripheral %s: unknown kind %q", cfg.Name, cfg.Periph)
		}
		top = spec.Top
		irqWired = spec.HasIRQ
		d, reports, err = periph.Build(cfg.Periph, cfg.Params, instrument)
	}
	if err != nil {
		return nil, err
	}
	engine := sim.EngineAuto
	if cfg.Interp {
		engine = sim.EngineInterp
	}
	s, err := sim.NewEngine(d, engine)
	if err != nil {
		return nil, err
	}
	inst := &periphInst{cfg: cfg, design: d, sim: s, irqWired: irqWired}
	// Power-on reset pulse: registers with non-zero reset values
	// (baud divisors, state machines) come up initialized, exactly
	// like the physical platform asserting its reset line at boot.
	if sig, ok := d.SignalByName(bus.SigRst); ok && sig.IsInput {
		if err := s.SetInput(bus.SigRst, 1); err != nil {
			return nil, err
		}
		if err := s.StepCycle(); err != nil {
			return nil, fmt.Errorf("peripheral %s: power-on reset: %w", cfg.Name, err)
		}
		if err := s.SetInput(bus.SigRst, 0); err != nil {
			return nil, err
		}
		if err := s.EvalComb(); err != nil {
			return nil, fmt.Errorf("peripheral %s: power-on reset: %w", cfg.Name, err)
		}
	}
	if instrument {
		layout, err := scanchain.Layout(reports, top)
		if err != nil {
			return nil, err
		}
		if uint(len(layout)) != d.StateBits() {
			return nil, fmt.Errorf("peripheral %s: scan chain covers %d of %d state bits",
				cfg.Name, len(layout), d.StateBits())
		}
		inst.layout = layout
	}
	return inst, nil
}

// Name returns the target's instance name.
func (t *Target) Name() string { return t.name }

// Kind reports the execution vehicle ("simulator" or "fpga"); after
// a failover it reports the adopted backend.
func (t *Target) Kind() string { return t.kind }

// Clock returns the virtual clock all costs are charged to.
func (t *Target) Clock() *vtime.Clock { return t.clock }

// Stats returns a copy of the cumulative counters.
func (t *Target) Stats() Stats { return t.stats }

// StateBits is the total snapshot-relevant state across peripherals.
func (t *Target) StateBits() uint {
	var n uint
	for _, inst := range t.order {
		n += inst.design.StateBits()
	}
	return n
}

// Peripherals returns the hosted peripheral instance names in build
// order: the stable index space the remote protocol's batch frames
// and IRQ bitmaps address peripherals by.
func (t *Target) Peripherals() []string {
	names := make([]string, len(t.order))
	for i, inst := range t.order {
		names[i] = inst.cfg.Name
	}
	return names
}

// Generation returns the target-level mutation generation. It folds
// any pending per-peripheral simulator mutations in lazily: the
// counter advances exactly when some register, memory element or
// input pin changed value since the previous call. Two equal return
// values therefore prove the hardware state is unchanged.
func (t *Target) Generation() uint64 {
	for _, inst := range t.order {
		if g := inst.sim.Gen(); g != inst.genBase {
			inst.genBase = g
			t.gen++
		}
	}
	return t.gen
}

// AnchorSeq identifies the current dirty-tracking anchor (the state
// at the last Save/Restore/Reset). Delta restores are only valid
// against the snapshot captured at the same sequence number.
func (t *Target) AnchorSeq() uint64 { return t.anchorSeq }

// reanchor resets dirty tracking so the current hardware state
// becomes the delta-restore reference. mutated=false is the
// post-Save case: a scan-chain save transiently rotates bits through
// the fabric (net-identity on state), so the simulator generations
// move but the target generation must not — the saved state IS the
// live state.
func (t *Target) reanchor(mutated bool) {
	if mutated {
		t.gen++
	}
	for _, inst := range t.order {
		inst.genBase = inst.sim.Gen()
		inst.sim.ClearDirty()
	}
	t.anchorSeq++
}

// InjectFaults arms a deterministic fault schedule on the target's
// link. A zero schedule disarms injection.
func (t *Target) InjectFaults(s FaultSchedule) {
	if !s.active() {
		t.faults = nil
		return
	}
	t.faults = newInjector(s)
}

// SetRetryPolicy replaces the transient-fault retry policy.
func (t *Target) SetRetryPolicy(p RetryPolicy) { t.retry = p }

// port is a handle bound to the target by instance name, so it stays
// valid across a backend failover.
type port struct {
	t    *Target
	name string
}

var _ bus.Port = (*port)(nil)

func (p *port) ReadReg(offset uint32) (uint32, error)  { return p.t.readReg(p.name, offset) }
func (p *port) WriteReg(offset uint32, v uint32) error { return p.t.writeReg(p.name, offset, v) }
func (p *port) IRQLevel() (bool, error)                { return p.t.irqLevel(p.name) }

// Port returns the register port of a hosted peripheral.
func (t *Target) Port(name string) (bus.Port, error) {
	if _, ok := t.periphs[name]; !ok {
		return nil, fmt.Errorf("target %s: no peripheral %q", t.name, name)
	}
	return &port{t: t, name: name}, nil
}

// linkOp runs one link transaction with fault injection, bounded
// exponential-backoff retry, health checking and failover. rec, when
// non-nil, is journaled after success so the op can be replayed onto
// a standby target.
func (t *Target) linkOp(op string, rec *journalOp, fn func() error) error {
	if t.dead {
		return fatalf(op, "target %s is dead after an unrecoverable failure", t.name)
	}
	pol := t.retry.norm()
	backoff := pol.Backoff
	consecutive := 0
	for {
		var err error
		if t.faults != nil {
			if err = t.faults.op(t.clock); err != nil {
				t.stats.FaultsInjected++
			}
		}
		if err == nil {
			// Faults fire before the operation reaches the hardware,
			// so a retried operation applies exactly once.
			err = fn()
		}
		if err == nil {
			if rec != nil {
				t.journalAppend(*rec)
			}
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		consecutive++
		if consecutive <= pol.MaxRetries {
			t.stats.Retries++
			t.clock.Advance(backoff)
			if backoff < pol.MaxBackoff {
				backoff *= 2
				if backoff > pol.MaxBackoff {
					backoff = pol.MaxBackoff
				}
			}
			continue
		}
		// Retry budget exhausted: probe the link before deciding the
		// failure is persistent.
		if t.healthy(pol) {
			// Fault storm on a live link: keep retrying at capped
			// backoff.
			consecutive = 0
			continue
		}
		if ferr := t.failover(op, err); ferr != nil {
			return ferr
		}
		// Loop re-runs fn against the adopted (fault-free) backend.
		consecutive = 0
	}
}

// healthy probes the link with pings; any echo proves it alive.
func (t *Target) healthy(pol RetryPolicy) bool {
	if t.faults == nil {
		return true
	}
	for i := 0; i < pol.HealthPings; i++ {
		t.clock.Advance(t.costs.IORoundTrip)
		if err := t.faults.op(t.clock); err == nil {
			return true
		}
		t.stats.FaultsInjected++
	}
	return false
}

func (t *Target) journalAppend(j journalOp) {
	if t.standby == nil || t.journalFull {
		return
	}
	if len(t.journal) >= journalCap {
		t.journal = nil
		t.journalFull = true
		return
	}
	t.journal = append(t.journal, j)
}

// fastLink reports whether link operations may skip the retry/
// failover machinery entirely: no fault injection armed, no standby
// to journal for, and the link alive. On this path linkOp would run
// the operation exactly once and journal nothing, so calling the
// backend directly is behaviorally identical — and free of the
// closure and journal-record allocations linkOp's bookkeeping costs
// per call, which matters when a fuzzing hot loop advances the
// hardware once per retired instruction.
func (t *Target) fastLink() bool {
	return !t.dead && t.faults == nil && t.standby == nil
}

// readReg forwards a register read over the link.
func (t *Target) readReg(name string, offset uint32) (uint32, error) {
	if t.fastLink() {
		return t.execRead(name, offset)
	}
	var v uint32
	err := t.linkOp("read "+name, &journalOp{op: jRead, periph: name, addr: offset}, func() error {
		var err error
		v, err = t.execRead(name, offset)
		return err
	})
	return v, err
}

// writeReg forwards a register write over the link.
func (t *Target) writeReg(name string, offset uint32, v uint32) error {
	if t.fastLink() {
		return t.execWrite(name, offset, v)
	}
	return t.linkOp("write "+name, &journalOp{op: jWrite, periph: name, addr: offset, val: v}, func() error {
		return t.execWrite(name, offset, v)
	})
}

// irqLevel samples the interrupt line. The line is a dedicated
// sideband wire: sampling is free of virtual time and never journaled
// (it carries no state).
func (t *Target) irqLevel(name string) (bool, error) {
	if t.fastLink() {
		return t.execIRQLevel(name)
	}
	var level bool
	err := t.linkOp("irq "+name, nil, func() error {
		var err error
		level, err = t.execIRQLevel(name)
		return err
	})
	return level, err
}

func (t *Target) execIRQLevel(name string) (bool, error) {
	inst, ok := t.periphs[name]
	if !ok {
		return false, fatalf("irq", "no peripheral %q", name)
	}
	v, err := inst.sim.Peek(bus.SigIRQ)
	if err != nil {
		return false, fatalf("irq "+name, "%v", err)
	}
	return v != 0, nil
}

// HasAssertions reports whether any hardware assertion is registered.
// A target without assertions can never produce violations, so a
// remote client may answer TakeViolations locally without a round
// trip (assertions must be registered before the target is served).
func (t *Target) HasAssertions() bool {
	for _, inst := range t.order {
		if len(inst.asserts) > 0 {
			return true
		}
	}
	return false
}

// IRQWired reports whether the named peripheral can ever drive its
// interrupt line. False means the line is statically constant-low
// (corpus metadata: the module's irq output is tied to 1'b0), so a
// remote client may answer IRQ polls for it locally, without a wire
// round trip. Unknown names report wired, the conservative answer.
func (t *Target) IRQWired(name string) bool {
	inst, ok := t.periphs[name]
	if !ok {
		return true
	}
	return inst.irqWired
}

// Advance runs every hosted peripheral n clock cycles.
func (t *Target) Advance(n uint64) error {
	return t.linkOp("advance", &journalOp{op: jAdvance, n: n}, func() error {
		return t.execAdvance(n)
	})
}

// Save captures the complete hardware state. On success the snapshot
// becomes the failover anchor (last consistent state) and the op
// journal restarts from it.
func (t *Target) Save() (State, error) {
	// Fold pending mutations into the generation before the backend
	// runs, so they are not conflated with the scan rotation's
	// transient (net-identity) bit movement absorbed by reanchor.
	t.Generation()
	var st State
	err := t.linkOp("save", nil, func() error {
		var err error
		st, err = t.saveBackend()
		return err
	})
	if err != nil {
		return nil, err
	}
	t.lastGood = st.Clone()
	t.journal = nil
	t.journalFull = false
	t.reanchor(false)
	return st, nil
}

// Restore loads a previously saved state. The snapshot is validated
// against the hosted designs before any bit reaches the hardware;
// corrupted or mismatched snapshots are rejected with an integrity
// error instead of silently diverging the hardware.
func (t *Target) Restore(s State) error {
	if err := t.validateState(s); err != nil {
		return err
	}
	err := t.linkOp("restore", nil, func() error { return t.applyState(s) })
	if err != nil {
		return err
	}
	if t.standby != nil {
		// lastGood is only ever read by failover, which needs an armed
		// standby; arming one later re-snapshots (see Standby), so with
		// no standby the deep clone is skipped — it would otherwise be
		// the only allocation on a fuzzer's per-exec reset path.
		t.lastGood = s.Clone()
	}
	t.journal = nil
	t.journalFull = false
	t.reanchor(true)
	return nil
}

// RestoreDelta loads a previously saved state by writing back only
// the state elements dirtied since the last anchor (Save, Restore or
// Reset), charging the incremental-restore cost instead of the full
// freeze+copy. It returns (false, nil) — caller must fall back to
// Restore — when the target has no physical delta path: scan-chain
// and readback FPGAs always move the whole fabric, and a target with
// an armed fault injector or standby must go through the journaled
// full path so failover replay stays exact.
//
// Correctness precondition (checked by the snapshot manager, not
// here): s must be the state captured at the current AnchorSeq —
// every clean element already holds its value from s.
func (t *Target) RestoreDelta(s State) (bool, error) {
	if t.kind != KindSimulator || t.scan || t.faults != nil || t.standby != nil {
		return false, nil
	}
	if err := t.validateState(s); err != nil {
		return true, err
	}
	if err := t.linkOp("restore-delta", nil, func() error { return t.applyDelta(s) }); err != nil {
		return true, err
	}
	// No lastGood update: the guard above already excludes targets
	// with a standby armed, and only failover (which requires one)
	// ever reads it. Cloning here would allocate on every delta
	// restore — the fuzzer's per-exec reset.
	t.journal = nil
	t.journalFull = false
	t.reanchor(true)
	return true, nil
}

// Reset performs a warm reset: every peripheral returns to its
// power-on (zero) state without paying a platform reboot.
func (t *Target) Reset() error {
	err := t.linkOp("reset", nil, func() error { return t.execReset() })
	if err != nil {
		return err
	}
	t.lastGood = t.powerOn.Clone()
	t.journal = nil
	t.journalFull = false
	t.reanchor(true)
	return nil
}

// Peek reads an internal signal by name: simulator target only.
func (t *Target) Peek(periphName, signal string) (uint64, error) {
	if t.kind != KindSimulator {
		return 0, ErrNoVisibility
	}
	inst, ok := t.periphs[periphName]
	if !ok {
		return 0, fmt.Errorf("target %s: no peripheral %q", t.name, periphName)
	}
	return inst.sim.Peek(signal)
}

// Simulator exposes the underlying RTL simulator of one peripheral
// for tracing and deep inspection: simulator target only.
func (t *Target) Simulator(periphName string) (*sim.Simulator, error) {
	if t.kind != KindSimulator {
		return nil, ErrNoVisibility
	}
	inst, ok := t.periphs[periphName]
	if !ok {
		return nil, fmt.Errorf("target %s: no peripheral %q", t.name, periphName)
	}
	return inst.sim, nil
}

// --- raw backend operations (no fault injection, no retry) ---

func (t *Target) execRead(name string, offset uint32) (uint32, error) {
	inst, ok := t.periphs[name]
	if !ok {
		return 0, fatalf("read", "no peripheral %q", name)
	}
	t.clock.Advance(t.costs.IORoundTrip + t.costs.Cycle)
	t.stats.IOOps++
	v, err := inst.busRead(offset)
	if err != nil {
		return 0, fatalf("read "+name, "%v", err)
	}
	if err := t.checkAssertions(inst); err != nil {
		return 0, err
	}
	return v, nil
}

func (t *Target) execWrite(name string, offset uint32, v uint32) error {
	inst, ok := t.periphs[name]
	if !ok {
		return fatalf("write", "no peripheral %q", name)
	}
	t.clock.Advance(t.costs.IORoundTrip + t.costs.Cycle)
	t.stats.IOOps++
	if err := inst.busWrite(offset, v); err != nil {
		return fatalf("write "+name, "%v", err)
	}
	return t.checkAssertions(inst)
}

func (t *Target) execAdvance(n uint64) error {
	t.clock.Advance(time.Duration(n) * t.costs.Cycle)
	for i := uint64(0); i < n; i++ {
		for _, inst := range t.order {
			if err := inst.sim.StepCycle(); err != nil {
				return fatalf("advance", "%s: %v", inst.cfg.Name, err)
			}
		}
		t.stats.Cycles++
		for _, inst := range t.order {
			if len(inst.asserts) > 0 {
				if err := t.checkAssertions(inst); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (t *Target) execReset() error {
	t.clock.Advance(t.costs.Cycle)
	for _, inst := range t.order {
		hw := t.powerOn[inst.cfg.Name]
		if hw == nil {
			hw = &sim.HWState{}
		}
		if err := inst.sim.Restore(hw); err != nil {
			return fatalf("reset", "%s: %v", inst.cfg.Name, err)
		}
	}
	return nil
}

// snapshotRaw copies the full state directly (no cost charged): the
// full-visibility path of the simulator target and the orchestrator's
// internal bookkeeping.
func (t *Target) snapshotRaw() State {
	st := make(State, len(t.order))
	for _, inst := range t.order {
		st[inst.cfg.Name] = inst.sim.Snapshot()
	}
	return st
}

func (t *Target) saveBackend() (State, error) {
	before := t.clock.Now()
	var st State
	if t.scan {
		st = make(State, len(t.order))
		for _, inst := range t.order {
			hw, err := t.scanSave(inst)
			if err != nil {
				return nil, err
			}
			st[inst.cfg.Name] = hw
		}
	} else {
		// Simulator: CRIU-like freeze+copy. Readback FPGA: one
		// fixed-cost full-fabric dump.
		t.clock.Advance(t.costs.SnapshotCost(t.StateBits()))
		st = t.snapshotRaw()
	}
	t.stats.Snapshots++
	t.stats.SnapshotBytes += uint64(t.StateBits()+7) / 8
	t.stats.SnapshotTime += t.clock.Now() - before
	return st, nil
}

func (t *Target) validateState(s State) error {
	if s == nil {
		return integrityf("restore", "nil state")
	}
	for name, hw := range s {
		inst, ok := t.periphs[name]
		if !ok {
			return integrityf("restore", "snapshot names unknown peripheral %q", name)
		}
		if hw == nil {
			return integrityf("restore", "nil state for peripheral %q", name)
		}
		d := inst.design
		for rn := range hw.Regs {
			if sig, ok := d.SignalByName(rn); !ok || !sig.IsReg {
				return integrityf("restore", "peripheral %s: register %q does not exist in design", name, rn)
			}
		}
		for mn, words := range hw.Mems {
			m, ok := d.MemoryByName(mn)
			if !ok {
				return integrityf("restore", "peripheral %s: memory %q does not exist in design", name, mn)
			}
			if uint(len(words)) > m.Depth {
				return integrityf("restore", "peripheral %s: memory %q has %d words, design holds %d",
					name, mn, len(words), m.Depth)
			}
		}
		// Unknown input names are tolerated: state transfers between
		// scan-instrumented and plain builds of the same design.
	}
	return nil
}

// applyState loads s into the hardware, charging the restore cost.
// Callers must have validated s.
func (t *Target) applyState(s State) error {
	before := t.clock.Now()
	if t.scan {
		for _, inst := range t.order {
			if err := t.scanRestore(inst, s[inst.cfg.Name]); err != nil {
				return err
			}
		}
	} else {
		t.clock.Advance(t.costs.SnapshotCost(t.StateBits()))
		for _, inst := range t.order {
			hw := s[inst.cfg.Name]
			if hw == nil {
				hw = &sim.HWState{}
			}
			if err := inst.sim.Restore(hw); err != nil {
				return integrityf("restore "+inst.cfg.Name, "%v", err)
			}
		}
	}
	t.stats.Restores++
	t.stats.SnapshotBytes += uint64(t.StateBits()+7) / 8
	t.stats.SnapshotTime += t.clock.Now() - before
	return nil
}

// applyDelta writes back only the dirty state elements from s,
// charging the incremental cost. Callers must have validated s and
// guaranteed the anchor precondition (see RestoreDelta).
func (t *Target) applyDelta(s State) error {
	before := t.clock.Now()
	var bits uint
	for _, inst := range t.order {
		hw := s[inst.cfg.Name]
		if hw == nil {
			hw = &sim.HWState{}
		}
		n, err := inst.sim.RestoreDirty(hw)
		if err != nil {
			return integrityf("restore-delta "+inst.cfg.Name, "%v", err)
		}
		bits += n
	}
	t.clock.Advance(t.costs.DeltaCost(bits))
	t.stats.Restores++
	t.stats.DeltaRestores++
	t.stats.SnapshotBytes += uint64(bits+7) / 8
	t.stats.SnapshotTime += t.clock.Now() - before
	return nil
}

// --- register-port bus transactions (single-cycle convention) ---

func (inst *periphInst) busWrite(addr, val uint32) error {
	s := inst.sim
	if err := driveAll(s,
		in{bus.SigSel, 1}, in{bus.SigWen, 1},
		in{bus.SigAddr, uint64(addr)}, in{bus.SigWData, uint64(val)}); err != nil {
		return err
	}
	if err := s.StepCycle(); err != nil {
		return err
	}
	if err := driveAll(s, in{bus.SigSel, 0}, in{bus.SigWen, 0}); err != nil {
		return err
	}
	return s.EvalComb()
}

func (inst *periphInst) busRead(addr uint32) (uint32, error) {
	s := inst.sim
	if err := driveAll(s,
		in{bus.SigSel, 1}, in{bus.SigWen, 0}, in{bus.SigAddr, uint64(addr)}); err != nil {
		return 0, err
	}
	if err := s.EvalComb(); err != nil {
		return 0, err
	}
	v, err := s.Peek(bus.SigRData)
	if err != nil {
		return 0, err
	}
	if err := s.StepCycle(); err != nil {
		return 0, err
	}
	if err := s.SetInput(bus.SigSel, 0); err != nil {
		return 0, err
	}
	if err := s.EvalComb(); err != nil {
		return 0, err
	}
	return uint32(v), nil
}

type in struct {
	name string
	val  uint64
}

func driveAll(s *sim.Simulator, ins ...in) error {
	for _, i := range ins {
		if err := s.SetInput(i.name, i.val); err != nil {
			return err
		}
	}
	return nil
}
