package target

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"hardsnap/internal/bus"
	"hardsnap/internal/vtime"
)

// FaultSchedule is a deterministic, seedable description of link
// misbehavior — the paper's USB3/JTAG transport made hostile. The
// zero value injects nothing. The same schedule applied to the same
// operation sequence reproduces the same faults, so fault-injection
// runs are exactly repeatable.
type FaultSchedule struct {
	// Seed initializes the fault PRNG.
	Seed int64
	// DropRate is the probability a request frame is lost (the
	// client observes a timeout).
	DropRate float64
	// CorruptRate is the probability a frame arrives bit-flipped.
	// On checksummed links corruption is detected and surfaces as a
	// transient retransmit, never as a wrong value.
	CorruptRate float64
	// LatencyJitter adds a uniform extra delay in [0, LatencyJitter)
	// to every transaction.
	LatencyJitter time.Duration
	// StallEvery, when non-zero, stalls every Nth transaction for
	// StallTime (bus arbitration hiccups, USB scheduling gaps).
	StallEvery uint64
	// StallTime is the duration of each stall.
	StallTime time.Duration
	// FailAfter, when non-zero, kills the link permanently after
	// that many transactions: every later one times out. This is the
	// persistent-failure scenario that triggers target failover.
	FailAfter uint64
}

func (s FaultSchedule) active() bool { return s != FaultSchedule{} }

// injector applies a FaultSchedule to in-process target links,
// charging delays to the virtual clock.
type injector struct {
	sched FaultSchedule
	rng   *rand.Rand
	ops   uint64
}

func newInjector(s FaultSchedule) *injector {
	return &injector{sched: s, rng: rand.New(rand.NewSource(s.Seed))}
}

// op models one link transaction: it charges jitter/stall latency and
// returns a transient error if the transaction is lost. Faults fire
// before the operation reaches the hardware, so a retried operation
// applies exactly once.
func (in *injector) op(clock *vtime.Clock) error {
	in.ops++
	if in.sched.LatencyJitter > 0 {
		clock.Advance(time.Duration(in.rng.Int63n(int64(in.sched.LatencyJitter))))
	}
	if in.sched.StallEvery > 0 && in.sched.StallTime > 0 && in.ops%in.sched.StallEvery == 0 {
		clock.Advance(in.sched.StallTime)
	}
	if in.sched.FailAfter > 0 && in.ops > in.sched.FailAfter {
		clock.Advance(vtime.LinkTimeout)
		return transientf("link", "request timed out (link down)")
	}
	if in.sched.DropRate > 0 && in.rng.Float64() < in.sched.DropRate {
		clock.Advance(vtime.LinkTimeout)
		return transientf("link", "dropped frame (timeout)")
	}
	if in.sched.CorruptRate > 0 && in.rng.Float64() < in.sched.CorruptRate {
		return transientf("link", "corrupted frame (bad CRC)")
	}
	return nil
}

// FaultPort wraps a bus.Port with deterministic fault injection: lost
// transactions surface as transient typed errors, latency is charged
// to the virtual clock when one is attached (or slept in real time
// otherwise). It lets any port-level consumer — the remote server,
// a custom harness — be tested against a misbehaving link.
type FaultPort struct {
	inner bus.Port
	clock *vtime.Clock
	inj   *injector
}

// NewFaultPort wraps port. clock may be nil, in which case injected
// latency is slept in real time instead of charged virtually.
func NewFaultPort(port bus.Port, clock *vtime.Clock, sched FaultSchedule) *FaultPort {
	return &FaultPort{inner: port, clock: clock, inj: newInjector(sched)}
}

var _ bus.Port = (*FaultPort)(nil)

func (p *FaultPort) fault() error {
	if p.clock != nil {
		return p.inj.op(p.clock)
	}
	var c vtime.Clock
	err := p.inj.op(&c)
	if d := c.Now(); d > 0 {
		time.Sleep(d)
	}
	return err
}

// ReadReg reads through the faulty link.
func (p *FaultPort) ReadReg(offset uint32) (uint32, error) {
	if err := p.fault(); err != nil {
		return 0, err
	}
	return p.inner.ReadReg(offset)
}

// WriteReg writes through the faulty link.
func (p *FaultPort) WriteReg(offset uint32, v uint32) error {
	if err := p.fault(); err != nil {
		return err
	}
	return p.inner.WriteReg(offset, v)
}

// IRQLevel samples the interrupt line through the faulty link.
func (p *FaultPort) IRQLevel() (bool, error) {
	if err := p.fault(); err != nil {
		return false, err
	}
	return p.inner.IRQLevel()
}

// Advance forwards clock advancement when the wrapped port supports
// it (same contract as remote.Advancer).
func (p *FaultPort) Advance(n uint64) error {
	if err := p.fault(); err != nil {
		return err
	}
	if adv, ok := p.inner.(interface{ Advance(uint64) error }); ok {
		return adv.Advance(n)
	}
	return fatalf("advance", "wrapped port does not support advance")
}

// FaultConn wraps a net.Conn with deterministic frame-level fault
// injection for the remote protocol: dropped writes (the peer never
// sees the frame and the reader times out), bit-flipped frames
// (caught by the protocol CRC) and real-time latency jitter. After
// FailAfter frames the link goes permanently silent.
//
// Drops and corruption are frame-atomic (one Write/Read call = one
// frame in the remote protocol), so a retried transaction never
// desynchronizes the stream.
type FaultConn struct {
	net.Conn
	mu  sync.Mutex
	inj *injector
}

// NewFaultConn wraps conn with the given schedule.
func NewFaultConn(conn net.Conn, sched FaultSchedule) *FaultConn {
	return &FaultConn{Conn: conn, inj: newInjector(sched)}
}

// decide consumes one scheduled transaction: (drop, corruptAt) where
// corruptAt < 0 means no corruption.
func (c *FaultConn) decide(n int) (dead, drop bool, corruptAt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in := c.inj
	in.ops++
	corruptAt = -1
	if in.sched.LatencyJitter > 0 {
		time.Sleep(time.Duration(in.rng.Int63n(int64(in.sched.LatencyJitter))))
	}
	if in.sched.StallEvery > 0 && in.sched.StallTime > 0 && in.ops%in.sched.StallEvery == 0 {
		time.Sleep(in.sched.StallTime)
	}
	if in.sched.FailAfter > 0 && in.ops > in.sched.FailAfter {
		return true, false, -1
	}
	if in.sched.DropRate > 0 && in.rng.Float64() < in.sched.DropRate {
		return false, true, -1
	}
	if in.sched.CorruptRate > 0 && in.rng.Float64() < in.sched.CorruptRate && n > 0 {
		return false, false, in.rng.Intn(n * 8)
	}
	return false, false, -1
}

// Write sends one frame, possibly dropping or corrupting it.
func (c *FaultConn) Write(b []byte) (int, error) {
	dead, drop, corrupt := c.decide(len(b))
	if dead || drop {
		// Swallow the frame: the peer's read times out.
		return len(b), nil
	}
	if corrupt >= 0 {
		mut := append([]byte(nil), b...)
		mut[corrupt/8] ^= 1 << uint(corrupt%8)
		_, err := c.Conn.Write(mut)
		return len(b), err
	}
	return c.Conn.Write(b)
}

// Read receives one frame, possibly corrupting it in flight.
// (Inbound drops are modeled on the writer side, keeping frames
// atomic.)
func (c *FaultConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if err != nil || n == 0 {
		return n, err
	}
	_, _, corrupt := c.decide(n)
	if corrupt >= 0 && corrupt/8 < n {
		b[corrupt/8] ^= 1 << uint(corrupt%8)
	}
	return n, err
}
