package target

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"

	"hardsnap/internal/sim"
)

// State is a portable whole-target hardware snapshot: one complete
// peripheral state per instance name. It transfers between any two
// targets hosting the same peripheral set (simulator <-> FPGA), which
// is both the paper's E7 multi-target mechanism and the failover path.
type State map[string]*sim.HWState

// Clone deep-copies the state.
func (s State) Clone() State {
	if s == nil {
		return nil
	}
	c := make(State, len(s))
	for name, hw := range s {
		n := &sim.HWState{
			Regs:   make(map[string]uint64, len(hw.Regs)),
			Mems:   make(map[string][]uint64, len(hw.Mems)),
			Inputs: make(map[string]uint64, len(hw.Inputs)),
		}
		for k, v := range hw.Regs {
			n.Regs[k] = v
		}
		for k, v := range hw.Mems {
			n.Mems[k] = append([]uint64(nil), v...)
		}
		for k, v := range hw.Inputs {
			n.Inputs[k] = v
		}
		c[name] = n
	}
	return c
}

// Serialized snapshot framing: magic(4) version(1) length(4) crc32(4)
// payload. The length and checksum make truncation and corruption
// detectable before any byte reaches the hardware (tentpole of the
// paper's consistency argument: a bad restore must be rejected, not
// silently applied).
const (
	stateMagic   = 0x48535354 // "HSST"
	stateVersion = 1
	stateHdrLen  = 4 + 1 + 4 + 4
)

// EncodeState serializes a state with an integrity header
// (magic, version, payload length, CRC-32).
func EncodeState(s State) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fatalf("encode state", "%v", err)
	}
	p := payload.Bytes()
	out := make([]byte, stateHdrLen+len(p))
	binary.LittleEndian.PutUint32(out[0:4], stateMagic)
	out[4] = stateVersion
	binary.LittleEndian.PutUint32(out[5:9], uint32(len(p)))
	binary.LittleEndian.PutUint32(out[9:13], crc32.ChecksumIEEE(p))
	copy(out[stateHdrLen:], p)
	return out, nil
}

// DecodeState validates and deserializes a state produced by
// EncodeState. Truncated or corrupted data yields an integrity error.
func DecodeState(data []byte) (State, error) {
	if len(data) < stateHdrLen {
		return nil, integrityf("decode state", "truncated header: %d bytes", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != stateMagic {
		return nil, integrityf("decode state", "bad magic %#x", binary.LittleEndian.Uint32(data[0:4]))
	}
	if data[4] != stateVersion {
		return nil, integrityf("decode state", "unsupported version %d", data[4])
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	payload := data[stateHdrLen:]
	if uint32(len(payload)) != n {
		return nil, integrityf("decode state", "length mismatch: header says %d bytes, got %d", n, len(payload))
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:13]) {
		return nil, integrityf("decode state", "checksum mismatch (%#x != %#x)",
			sum, binary.LittleEndian.Uint32(data[9:13]))
	}
	var s State
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, integrityf("decode state", "%v", err)
	}
	return s, nil
}
