package target

import (
	"fmt"

	"hardsnap/internal/sim"
	"hardsnap/internal/vtime"
)

// spawnSeedMix decorrelates the fault PRNG streams of sibling clones:
// child seed = parent seed + (stream+1) * spawnSeedMix (the 64-bit
// golden-ratio increment, so nearby stream numbers land far apart).
const spawnSeedMix = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64

// Spawn builds an independent copy of the target for worker fan-out:
// same peripherals, kind, snapshot costs and hardware assertions,
// rebuilt from the original configuration so the clone comes up in
// exactly the parent's power-on state (peripheral construction and
// the power-on reset pulse are deterministic). The clone keeps its
// own mutation generation, anchor, journal and violation list, and
// charges virtual time to the given clock.
//
// If the parent has fault injection armed, the clone gets a fresh
// PRNG stream derived from the parent seed and the stream number, so
// parallel fault runs are reproducible per worker without the clones
// observing correlated fault sequences. Standby targets and journal
// state are deliberately not inherited: a spawned worker target that
// dies fails its worker's subtree, which the merge layer reports.
func (t *Target) Spawn(name string, clock *vtime.Clock, stream int) (*Target, error) {
	if clock == nil {
		return nil, fmt.Errorf("target %s: spawn: nil clock", t.name)
	}
	cfgs := make([]PeriphConfig, 0, len(t.order))
	for _, inst := range t.order {
		cfgs = append(cfgs, inst.cfg)
	}
	nt, err := build(name, t.kind, clock, cfgs, t.costs, t.scan)
	if err != nil {
		return nil, fmt.Errorf("target %s: spawn: %w", t.name, err)
	}
	nt.retry = t.retry
	for _, a := range t.asserts {
		if err := nt.AddAssertion(a); err != nil {
			return nil, fmt.Errorf("target %s: spawn: %w", t.name, err)
		}
	}
	if t.faults != nil {
		nt.InjectFaults(t.faults.sched.Derive(stream))
	}
	return nt, nil
}

// Derive returns the schedule with a decorrelated child PRNG stream:
// the same (parent seed, stream) pair always derives the same child
// seed, so fan-out fault runs are reproducible. Counting triggers
// (StallEvery, FailAfter) restart with the fresh injector.
func (s FaultSchedule) Derive(stream int) FaultSchedule {
	s.Seed += int64(stream+1) * spawnSeedMix
	return s
}

// FaultSchedule returns the armed fault schedule, if any.
func (t *Target) FaultSchedule() (FaultSchedule, bool) {
	if t.faults == nil {
		return FaultSchedule{}, false
	}
	return t.faults.sched, true
}

// Clone is Spawn with the parent's name suffixed by the stream
// number; the common case when fanning out worker targets.
func (t *Target) Clone(stream int) (*Target, error) {
	return t.Spawn(fmt.Sprintf("%s-w%d", t.name, stream), &vtime.Clock{}, stream)
}

// PowerOnState returns a deep copy of the target's power-on hardware
// state (the state every Spawn comes up in).
func (t *Target) PowerOnState() State {
	return t.powerOn.Clone()
}

// AdoptState applies a hardware state to the target without charging
// snapshot-transfer virtual time or touching the restore counters:
// the worker fan-out uses it to seed a freshly spawned clone with the
// primary target's live state before any accounted work starts. The
// dirty-tracking anchor is reset, exactly as after a real restore.
func (t *Target) AdoptState(s State) error {
	if t.dead {
		return fatalf("adopt", "target %s is dead after an unrecoverable failure", t.name)
	}
	if err := t.validateState(s); err != nil {
		return err
	}
	for _, inst := range t.order {
		hw := s[inst.cfg.Name]
		if hw == nil {
			hw = &sim.HWState{}
		}
		if err := inst.sim.Restore(hw); err != nil {
			return integrityf("adopt "+inst.cfg.Name, "%v", err)
		}
	}
	t.lastGood = s.Clone()
	t.reanchor(true)
	return nil
}
