package verilog

import (
	"fmt"
	"strings"
)

// Print renders a source file back to Verilog text. The output is
// normalized (original spacing and comments are not preserved) but
// re-parses to an identical AST; the scan-chain instrumenter relies on
// this round trip.
func Print(f *SourceFile) string {
	var b strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			b.WriteString("\n")
		}
		printModule(&b, m)
	}
	return b.String()
}

// PrintModule renders a single module.
func PrintModule(m *Module) string {
	var b strings.Builder
	printModule(&b, m)
	return b.String()
}

func printModule(b *strings.Builder, m *Module) {
	b.WriteString("module ")
	b.WriteString(m.Name)
	if len(m.Params) > 0 {
		b.WriteString(" #(\n")
		for i, p := range m.Params {
			fmt.Fprintf(b, "  parameter %s = %s", p.Name, exprString(p.Value))
			if i < len(m.Params)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(")")
	}
	if len(m.Ports) > 0 {
		b.WriteString(" (\n")
		for i, p := range m.Ports {
			b.WriteString("  ")
			b.WriteString(p.Dir.String())
			if p.IsReg {
				b.WriteString(" reg")
			} else {
				b.WriteString(" wire")
			}
			if p.MSB != nil {
				fmt.Fprintf(b, " [%s:%s]", exprString(p.MSB), exprString(p.LSB))
			}
			b.WriteString(" ")
			b.WriteString(p.Name)
			if i < len(m.Ports)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(")")
	}
	b.WriteString(";\n")
	for _, item := range m.Items {
		printItem(b, item, 1)
	}
	b.WriteString("endmodule\n")
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func printItem(b *strings.Builder, item Item, depth int) {
	switch it := item.(type) {
	case *ParamItem:
		indent(b, depth)
		kw := "parameter"
		if it.Param.IsLocal {
			kw = "localparam"
		}
		fmt.Fprintf(b, "%s %s = %s;\n", kw, it.Param.Name, exprString(it.Param.Value))

	case *NetDecl:
		indent(b, depth)
		if it.IsReg {
			b.WriteString("reg")
		} else {
			b.WriteString("wire")
		}
		if it.MSB != nil {
			fmt.Fprintf(b, " [%s:%s]", exprString(it.MSB), exprString(it.LSB))
		}
		b.WriteString(" ")
		for i, n := range it.Names {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(n.Name)
			if n.ArrMSB != nil {
				fmt.Fprintf(b, " [%s:%s]", exprString(n.ArrMSB), exprString(n.ArrLSB))
			}
			if n.Init != nil {
				fmt.Fprintf(b, " = %s", exprString(n.Init))
			}
		}
		b.WriteString(";\n")

	case *Assign:
		indent(b, depth)
		fmt.Fprintf(b, "assign %s = %s;\n", exprString(it.LHS), exprString(it.RHS))

	case *AlwaysFF:
		indent(b, depth)
		fmt.Fprintf(b, "always @(posedge %s)\n", it.Clock)
		printStmt(b, it.Body, depth+1)

	case *AlwaysComb:
		indent(b, depth)
		b.WriteString("always @(*)\n")
		printStmt(b, it.Body, depth+1)

	case *Instance:
		indent(b, depth)
		b.WriteString(it.ModuleName)
		if len(it.ParamOverrides) > 0 {
			b.WriteString(" #(")
			first := true
			for _, name := range sortedKeys(it.ParamOverrides) {
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(b, ".%s(%s)", name, exprString(it.ParamOverrides[name]))
			}
			b.WriteString(")")
		}
		fmt.Fprintf(b, " %s (", it.Name)
		first := true
		for _, name := range sortedKeys(it.Conns) {
			if !first {
				b.WriteString(", ")
			}
			first = false
			if it.Conns[name] == nil {
				fmt.Fprintf(b, ".%s()", name)
			} else {
				fmt.Fprintf(b, ".%s(%s)", name, exprString(it.Conns[name]))
			}
		}
		b.WriteString(");\n")
	}
}

func sortedKeys(m map[string]Expr) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: maps are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Block:
		indent(b, depth-1)
		b.WriteString("begin\n")
		for _, sub := range st.Stmts {
			printStmt(b, sub, depth+1)
		}
		indent(b, depth-1)
		b.WriteString("end\n")

	case *If:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s)\n", exprString(st.Cond))
		printStmt(b, st.Then, depth+1)
		if st.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			printStmt(b, st.Else, depth+1)
		}

	case *Case:
		indent(b, depth)
		fmt.Fprintf(b, "case (%s)\n", exprString(st.Subject))
		for _, item := range st.Items {
			indent(b, depth+1)
			if item.Labels == nil {
				b.WriteString("default:\n")
			} else {
				labels := make([]string, len(item.Labels))
				for i, l := range item.Labels {
					labels[i] = exprString(l)
				}
				fmt.Fprintf(b, "%s:\n", strings.Join(labels, ", "))
			}
			printStmt(b, item.Body, depth+3)
		}
		indent(b, depth)
		b.WriteString("endcase\n")

	case *NonBlocking:
		indent(b, depth)
		fmt.Fprintf(b, "%s <= %s;\n", exprString(st.LHS), exprString(st.RHS))

	case *Blocking:
		indent(b, depth)
		fmt.Fprintf(b, "%s = %s;\n", exprString(st.LHS), exprString(st.RHS))
	}
}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Number:
		if x.Text != "" {
			return x.Text
		}
		if x.Width > 0 {
			return fmt.Sprintf("%d'h%x", x.Width, x.Value)
		}
		return fmt.Sprintf("%d", x.Value)
	case *Unary:
		return fmt.Sprintf("%s(%s)", x.Op, exprString(x.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.X), x.Op, exprString(x.Y))
	case *Ternary:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(x.Cond), exprString(x.Then), exprString(x.Else))
	case *Index:
		return fmt.Sprintf("%s[%s]", exprString(x.X), exprString(x.Idx))
	case *RangeSel:
		return fmt.Sprintf("%s[%s:%s]", exprString(x.X), exprString(x.MSB), exprString(x.LSB))
	case *Concat:
		parts := make([]string, len(x.Parts))
		for i, p := range x.Parts {
			parts[i] = exprString(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Repeat:
		return fmt.Sprintf("{%s{%s}}", exprString(x.Count), exprString(x.X))
	}
	return "?"
}

// ExprString renders an expression (exported for diagnostics).
func ExprString(e Expr) string { return exprString(e) }
