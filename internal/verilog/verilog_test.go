package verilog

import (
	"strings"
	"testing"
)

const sampleModule = `
// A small peripheral used to exercise the whole grammar.
module counter #(parameter WIDTH = 8, parameter STEP = 1) (
  input wire clk,
  input wire rst,
  input wire en,
  input wire [WIDTH-1:0] load_val,
  input wire load,
  output reg [WIDTH-1:0] count,
  output wire wrapped
);
  localparam MAX = (1 << WIDTH) - 1;
  reg [1:0] state;
  wire [WIDTH-1:0] next = count + STEP;
  reg [7:0] fifo [0:15];

  assign wrapped = (count == MAX) ? 1'b1 : 1'b0;

  always @(posedge clk) begin
    if (rst) begin
      count <= 0;
      state <= 2'b00;
    end else if (load) begin
      count <= load_val;
      fifo[0] <= load_val[7:0];
    end else if (en) begin
      case (state)
        2'b00: state <= 2'b01;
        2'b01, 2'b10: state <= 2'b11;
        default: state <= 2'b00;
      endcase
      count <= next;
    end
  end

  always @(*) begin
    /* block comment */
  end
endmodule
`

func TestParseSampleModule(t *testing.T) {
	f, err := Parse(sampleModule)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Modules) != 1 {
		t.Fatalf("modules: %d", len(f.Modules))
	}
	m := f.Modules[0]
	if m.Name != "counter" {
		t.Errorf("name %q", m.Name)
	}
	if len(m.Params) != 2 || m.Params[0].Name != "WIDTH" || m.Params[1].Name != "STEP" {
		t.Errorf("params: %+v", m.Params)
	}
	if len(m.Ports) != 7 {
		t.Fatalf("ports: %d", len(m.Ports))
	}
	if m.Ports[0].Name != "clk" || m.Ports[0].Dir != DirInput {
		t.Errorf("port 0: %+v", m.Ports[0])
	}
	if m.Ports[5].Name != "count" || !m.Ports[5].IsReg || m.Ports[5].Dir != DirOutput {
		t.Errorf("port count: %+v", m.Ports[5])
	}
	if m.Ports[5].MSB == nil {
		t.Error("count should have a range")
	}

	var ffs, combs, assigns, decls, params int
	for _, item := range m.Items {
		switch item.(type) {
		case *AlwaysFF:
			ffs++
		case *AlwaysComb:
			combs++
		case *Assign:
			assigns++
		case *NetDecl:
			decls++
		case *ParamItem:
			params++
		}
	}
	if ffs != 1 || combs != 1 || assigns != 1 || decls != 3 || params != 1 {
		t.Errorf("items: ff=%d comb=%d assign=%d decl=%d param=%d", ffs, combs, assigns, decls, params)
	}
}

func TestMemoryDecl(t *testing.T) {
	f, err := Parse(`module m(); reg [7:0] fifo [0:15]; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := f.Modules[0].Items[0].(*NetDecl)
	if !ok {
		t.Fatalf("item type %T", f.Modules[0].Items[0])
	}
	if d.Names[0].ArrMSB == nil {
		t.Fatal("missing array range")
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src   string
		value uint64
		width uint
	}{
		{"8'hFF", 0xFF, 8},
		{"4'b1010", 10, 4},
		{"16'd1234", 1234, 16},
		{"8'o17", 15, 8},
		{"42", 42, 0},
		{"'h3F", 0x3F, 32},
		{"32'hDEAD_BEEF", 0xDEADBEEF, 32},
		{"8'shFF", 0xFF, 8},
	}
	for _, tc := range cases {
		f, err := Parse("module m(); assign x = " + tc.src + "; endmodule")
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		a := f.Modules[0].Items[0].(*Assign)
		n, ok := a.RHS.(*Number)
		if !ok {
			t.Errorf("%s: not a number: %T", tc.src, a.RHS)
			continue
		}
		if n.Value != tc.value || n.Width != tc.width {
			t.Errorf("%s: got (%d, w%d), want (%d, w%d)", tc.src, n.Value, n.Width, tc.value, tc.width)
		}
	}
}

func TestXZRejected(t *testing.T) {
	_, err := Parse("module m(); assign x = 8'bxxxx_0000; endmodule")
	if err == nil {
		t.Fatal("x digits must be rejected")
	}
}

func TestNonBlockingVsComparison(t *testing.T) {
	f, err := Parse(`
module m(input wire clk, input wire [7:0] a, input wire [7:0] b, output reg y, output reg [7:0] r);
  always @(posedge clk) begin
    r <= a;
    y <= a <= b;
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	ff := findFF(t, f.Modules[0])
	blk := ff.Body.(*Block)
	if len(blk.Stmts) != 2 {
		t.Fatalf("stmts: %d", len(blk.Stmts))
	}
	second := blk.Stmts[1].(*NonBlocking)
	if _, ok := second.RHS.(*Binary); !ok {
		t.Fatalf("rhs of 'y <= a <= b' should be a comparison, got %T", second.RHS)
	}
}

func findFF(t *testing.T, m *Module) *AlwaysFF {
	t.Helper()
	for _, item := range m.Items {
		if ff, ok := item.(*AlwaysFF); ok {
			return ff
		}
	}
	t.Fatal("no always @(posedge) block")
	return nil
}

func TestInstanceParsing(t *testing.T) {
	f, err := Parse(`
module top(input wire clk);
  wire [7:0] d;
  counter #(.WIDTH(16)) u0 (.clk(clk), .count(d), .unused());
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	var inst *Instance
	for _, item := range f.Modules[0].Items {
		if i, ok := item.(*Instance); ok {
			inst = i
		}
	}
	if inst == nil {
		t.Fatal("no instance")
	}
	if inst.ModuleName != "counter" || inst.Name != "u0" {
		t.Errorf("instance: %+v", inst)
	}
	if len(inst.ParamOverrides) != 1 {
		t.Errorf("param overrides: %v", inst.ParamOverrides)
	}
	if inst.Conns["unused"] != nil {
		t.Error("unconnected port should map to nil")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	f, err := Parse("module m(); assign x = a + b * c == d | e; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: ((a + (b*c)) == d) | e
	root := f.Modules[0].Items[0].(*Assign).RHS.(*Binary)
	if root.Op != "|" {
		t.Fatalf("root op %q", root.Op)
	}
	eq := root.X.(*Binary)
	if eq.Op != "==" {
		t.Fatalf("second op %q", eq.Op)
	}
	add := eq.X.(*Binary)
	if add.Op != "+" {
		t.Fatalf("third op %q", add.Op)
	}
	if mul := add.Y.(*Binary); mul.Op != "*" {
		t.Fatalf("inner op %q", mul.Op)
	}
}

func TestConcatAndRepeat(t *testing.T) {
	f, err := Parse("module m(); assign x = {a, 2'b01, {4{b}}}; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	cat := f.Modules[0].Items[0].(*Assign).RHS.(*Concat)
	if len(cat.Parts) != 3 {
		t.Fatalf("parts: %d", len(cat.Parts))
	}
	if _, ok := cat.Parts[2].(*Repeat); !ok {
		t.Fatalf("part 2: %T", cat.Parts[2])
	}
}

func TestTernaryAndUnary(t *testing.T) {
	f, err := Parse("module m(); assign x = en ? ~a : (&b); endmodule")
	if err != nil {
		t.Fatal(err)
	}
	tern := f.Modules[0].Items[0].(*Assign).RHS.(*Ternary)
	if u := tern.Then.(*Unary); u.Op != "~" {
		t.Fatalf("then: %v", u)
	}
	if u := tern.Else.(*Unary); u.Op != "&" {
		t.Fatalf("else: %v", u)
	}
}

func TestRoundTrip(t *testing.T) {
	f1, err := Parse(sampleModule)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Print(f1)
	f2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, text1)
	}
	text2 := Print(f2)
	if text1 != text2 {
		t.Fatalf("print not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module", // truncated
		"module m( input wire; endmodule",
		"module m(); assign x = ; endmodule",
		"module m(); always @(posedge clk or posedge rst) begin end endmodule",
		"module m(); wire w = 8'q12; endmodule",
		"module m(); bogus!; endmodule",
		"module m(); case endmodule",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestMultipleModules(t *testing.T) {
	f, err := Parse(`
module a(); endmodule
module b(); endmodule
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 2 || f.FindModule("b") == nil || f.FindModule("zz") != nil {
		t.Fatalf("modules: %v", len(f.Modules))
	}
}

func TestDirectivesIgnored(t *testing.T) {
	f, err := Parse("`timescale 1ns/1ps\nmodule m(); endmodule\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Modules) != 1 {
		t.Fatal("directive should be skipped")
	}
}

func TestCaseWithMultipleLabels(t *testing.T) {
	f, err := Parse(`
module m(input wire clk, input wire [1:0] s, output reg [3:0] y);
  always @(posedge clk)
    case (s)
      2'd0, 2'd1: y <= 4'h1;
      2'd2: y <= 4'h2;
      default: y <= 4'h0;
    endcase
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	ff := findFF(t, f.Modules[0])
	cs := ff.Body.(*Case)
	if len(cs.Items) != 3 {
		t.Fatalf("case items: %d", len(cs.Items))
	}
	if len(cs.Items[0].Labels) != 2 {
		t.Fatalf("labels: %d", len(cs.Items[0].Labels))
	}
	if cs.Items[2].Labels != nil {
		t.Fatal("default should have nil labels")
	}
}

func TestStringsInLexer(t *testing.T) {
	// Strings are lexed but not used by the subset grammar; just make
	// sure the lexer handles them.
	toks, err := lexAll(`"hello \"world\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || !strings.Contains(toks[0].text, "hello") {
		t.Fatalf("tok: %+v", toks[0])
	}
}
