// Package verilog implements a lexer, parser, AST and printer for the
// synthesizable Verilog-2005 subset HardSnap's peripherals are written
// in. The subset covers: module declarations with parameters and ANSI
// ports, wire/reg declarations (including memories), continuous
// assignments, always @(posedge clk) and always @(*) blocks,
// if/else/case statements, module instantiation with named port
// connections, and the usual expression operators.
//
// Semantics are two-state (no X/Z) with 64-bit internal arithmetic;
// values are masked to the declared signal width on assignment. This
// matches the needs of cycle-accurate co-simulation; see DESIGN.md for
// the substitution rationale.
package verilog

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // possibly sized: 8'hFF, 4'b1010, 12, 'h3F
	tokString
	tokPunct   // single/multi char operator or punctuation
	tokKeyword // reserved word
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "assign": true,
	"always": true, "begin": true, "end": true, "if": true, "else": true,
	"case": true, "casez": true, "endcase": true, "default": true,
	"posedge": true, "negedge": true, "parameter": true,
	"localparam": true, "integer": true, "for": true, "function": true,
	"endfunction": true, "initial": true, "generate": true,
	"endgenerate": true, "genvar": true,
}

// multi-char punctuation, longest first.
var punctuations = []string{
	"<<<", ">>>", "===", "!==",
	"<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+:", "-:",
	"(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "?", "@", "#",
	"=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
}

type lexError struct {
	line int
	col  int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("verilog: %d:%d: %s", e.line, e.col, e.msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &lexError{line: l.line, col: l.col, msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		case c == '`':
			// Ignore compiler directives to end of line (`timescale...).
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	// '.' is allowed inside identifiers to support hierarchical
	// references (u0.state) in property expressions; it cannot start
	// one, so port-connection syntax (.clk(...)) is unaffected.
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumCont(c byte) bool {
	return isDigit(c) || c == '_' || (c >= 'a' && c <= 'f') ||
		(c >= 'A' && c <= 'F') || c == 'x' || c == 'X' || c == 'z' || c == 'Z'
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil

	case isDigit(c) || c == '\'':
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == '_') {
			l.advance()
		}
		// Optional base part: 'h 'd 'b 'o with value digits.
		if l.peekByte() == '\'' {
			l.advance()
			if b := l.peekByte(); b == 's' || b == 'S' {
				l.advance() // signed marker, accepted and ignored
			}
			base := l.peekByte()
			switch base {
			case 'h', 'H', 'd', 'D', 'b', 'B', 'o', 'O':
				l.advance()
			default:
				return token{}, l.errorf("bad number base %q", string(base))
			}
			for l.pos < len(l.src) && isNumCont(l.peekByte()) {
				l.advance()
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: startLine, col: startCol}, nil

	case c == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != '"' {
			if l.peekByte() == '\\' {
				l.advance()
			}
			l.advance()
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		text := l.src[start:l.pos]
		l.advance()
		return token{kind: tokString, text: text, line: startLine, col: startCol}, nil
	}

	for _, p := range punctuations {
		if len(l.src)-l.pos >= len(p) && l.src[l.pos:l.pos+len(p)] == p {
			for range p {
				l.advance()
			}
			return token{kind: tokPunct, text: p, line: startLine, col: startCol}, nil
		}
	}
	return token{}, l.errorf("unexpected character %q", string(c))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
