package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with source position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("verilog: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []token
	pos  int
}

// ParseExpr parses a standalone Verilog expression (used for hardware
// property assertions).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

// Parse parses Verilog source text.
func Parse(src string) (*SourceFile, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &SourceFile{}
	for !p.at(tokEOF, "") {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	return file, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKw(kw string) bool   { return p.at(tokKeyword, kw) }
func (p *parser) atPunct(s string) bool { return p.at(tokPunct, s) }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) (token, error) {
	if !p.atPunct(s) {
		return token{}, p.errorf("expected %q, got %v", s, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectKw(kw string) (token, error) {
	if !p.atKw(kw) {
		return token{}, p.errorf("expected %q, got %v", kw, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectIdent() (token, error) {
	if !p.at(tokIdent, "") {
		return token{}, p.errorf("expected identifier, got %v", p.cur())
	}
	return p.advance(), nil
}

func (p *parser) parseModule() (*Module, error) {
	kw, err := p.expectKw("module")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.text, Line: kw.line}

	// #(parameter A = 1, parameter B = 2)
	if p.atPunct("#") {
		p.advance()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if p.atKw("parameter") {
				p.advance()
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pn.text, Value: val, Line: pn.line})
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}

	// ANSI port list.
	if p.atPunct("(") {
		p.advance()
		if !p.atPunct(")") {
			var lastDir PortDir
			var lastReg bool
			var lastMSB, lastLSB Expr
			for {
				port := &Port{Line: p.cur().line}
				switch {
				case p.atKw("input"):
					p.advance()
					lastDir, lastReg, lastMSB, lastLSB = DirInput, false, nil, nil
				case p.atKw("output"):
					p.advance()
					lastDir, lastReg, lastMSB, lastLSB = DirOutput, false, nil, nil
				case p.atKw("inout"):
					p.advance()
					lastDir, lastReg, lastMSB, lastLSB = DirInout, false, nil, nil
				}
				if lastDir == 0 {
					return nil, p.errorf("port list must start with a direction")
				}
				if p.atKw("wire") {
					p.advance()
					lastReg = false
				} else if p.atKw("reg") {
					p.advance()
					lastReg = true
				}
				if p.atPunct("[") {
					msb, lsb, err := p.parseRange()
					if err != nil {
						return nil, err
					}
					lastMSB, lastLSB = msb, lsb
				} else if p.at(tokIdent, "") && (p.peek().kind == tokPunct && (p.peek().text == "," || p.peek().text == ")")) {
					// Bare name continuing previous direction keeps its
					// range only if a direction was just parsed;
					// otherwise reset handled above.
					_ = 0
				}
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				port.Dir = lastDir
				port.IsReg = lastReg
				port.MSB, port.LSB = lastMSB, lastLSB
				port.Name = pn.text
				m.Ports = append(m.Ports, port)
				if p.atPunct(",") {
					p.advance()
					continue
				}
				break
			}
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	for !p.atKw("endmodule") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unexpected end of file in module %s", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.advance() // endmodule
	return m, nil
}

func (p *parser) parseRange() (Expr, Expr, error) {
	if _, err := p.expectPunct("["); err != nil {
		return nil, nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, nil, err
	}
	return msb, lsb, nil
}

func (p *parser) parseItem() ([]Item, error) {
	switch {
	case p.atKw("parameter"), p.atKw("localparam"):
		isLocal := p.cur().text == "localparam"
		p.advance()
		var items []Item
		for {
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &ParamItem{Param: &Param{
				Name: pn.text, Value: val, IsLocal: isLocal, Line: pn.line,
			}})
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return items, nil

	case p.atKw("wire"), p.atKw("reg"), p.atKw("integer"):
		return p.parseNetDecl()

	case p.atKw("assign"):
		line := p.advance().line
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return []Item{&Assign{LHS: lhs, RHS: rhs, Line: line}}, nil

	case p.atKw("always"):
		return p.parseAlways()

	case p.at(tokIdent, ""):
		return p.parseInstance()
	}
	return nil, p.errorf("unexpected %v at module level", p.cur())
}

func (p *parser) parseNetDecl() ([]Item, error) {
	isReg := p.cur().text == "reg" || p.cur().text == "integer"
	isInteger := p.cur().text == "integer"
	line := p.advance().line
	d := &NetDecl{IsReg: isReg, Line: line}
	if isInteger {
		d.MSB = &Number{Value: 31, Width: 0, Text: "31"}
		d.LSB = &Number{Value: 0, Width: 0, Text: "0"}
	}
	if p.atPunct("[") {
		msb, lsb, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		d.MSB, d.LSB = msb, lsb
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: name.text}
		if p.atPunct("[") {
			amsb, alsb, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			dn.ArrMSB, dn.ArrLSB = amsb, alsb
		}
		if p.atPunct("=") {
			p.advance()
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			dn.Init = init
		}
		d.Names = append(d.Names, dn)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return []Item{d}, nil
}

func (p *parser) parseAlways() ([]Item, error) {
	line := p.advance().line // always
	if _, err := p.expectPunct("@"); err != nil {
		return nil, err
	}
	// Accept "@*" and "@(...)".
	if p.atPunct("*") {
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&AlwaysComb{Body: body, Line: line}}, nil
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.atPunct("*") {
		p.advance()
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&AlwaysComb{Body: body, Line: line}}, nil
	}
	if p.atKw("posedge") {
		p.advance()
		clk, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Reject sensitivity lists with more than the clock: async
		// resets are outside the subset.
		if p.atPunct(",") || p.at(tokIdent, "or") {
			return nil, p.errorf("only single posedge clock sensitivity is supported")
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return []Item{&AlwaysFF{Clock: clk.text, Body: body, Line: line}}, nil
	}
	// Plain sensitivity list "always @(a or b)" is treated as comb.
	for !p.atPunct(")") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unterminated sensitivity list")
		}
		p.advance()
	}
	p.advance()
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Item{&AlwaysComb{Body: body, Line: line}}, nil
}

func (p *parser) parseInstance() ([]Item, error) {
	modName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		ModuleName:     modName.text,
		ParamOverrides: map[string]Expr{},
		Conns:          map[string]Expr{},
		Line:           modName.line,
	}
	if p.atPunct("#") {
		p.advance()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if _, err := p.expectPunct("."); err != nil {
				return nil, err
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			inst.ParamOverrides[pn.text] = val
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	instName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst.Name = instName.text
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		for {
			if _, err := p.expectPunct("."); err != nil {
				return nil, err
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var actual Expr
			if !p.atPunct(")") {
				actual, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			inst.Conns[pn.text] = actual
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return []Item{inst}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKw("begin"):
		p.advance()
		blk := &Block{}
		for !p.atKw("end") {
			if p.at(tokEOF, "") {
				return nil, p.errorf("unterminated begin block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.advance()
		return blk, nil

	case p.atKw("if"):
		p.advance()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmt := &If{Cond: cond, Then: then}
		if p.atKw("else") {
			p.advance()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmt.Else = els
		}
		return stmt, nil

	case p.atKw("case"), p.atKw("casez"):
		p.advance()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		cs := &Case{Subject: subj}
		for !p.atKw("endcase") {
			if p.at(tokEOF, "") {
				return nil, p.errorf("unterminated case")
			}
			item := CaseItem{}
			if p.atKw("default") {
				p.advance()
				if p.atPunct(":") {
					p.advance()
				}
			} else {
				for {
					lbl, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Labels = append(item.Labels, lbl)
					if p.atPunct(",") {
						p.advance()
						continue
					}
					break
				}
				if _, err := p.expectPunct(":"); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			item.Body = body
			cs.Items = append(cs.Items, item)
		}
		p.advance()
		return cs, nil

	case p.atPunct(";"):
		p.advance()
		return &Block{}, nil
	}

	// Assignment statement: lhs <= rhs; or lhs = rhs. The LHS is parsed
	// with a restricted grammar (identifier, index, part-select or
	// concatenation) so that "<=" is not swallowed as a comparison.
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atPunct("<="):
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &NonBlocking{LHS: lhs, RHS: rhs}, nil
	case p.atPunct("="):
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Blocking{LHS: lhs, RHS: rhs}, nil
	}
	return nil, p.errorf("expected assignment, got %v", p.cur())
}

// parseLValue parses an assignment target: identifier with optional
// index/part-select chains, or a concatenation of such targets.
func (p *parser) parseLValue() (Expr, error) {
	if p.atPunct("{") {
		p.advance()
		cat := &Concat{}
		for {
			part, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, part)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return cat, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var x Expr = &Ident{Name: name.text}
	for p.atPunct("[") {
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atPunct(":") {
			p.advance()
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &RangeSel{X: x, MSB: first, LSB: lsb}
			continue
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		x = &Index{X: x, Idx: first}
	}
	return x, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	p.advance()
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		op := t.text
		// Normalize SystemVerilog-isms in the subset.
		switch op {
		case "===":
			op = "=="
		case "!==":
			op = "!="
		case "<<<":
			op = "<<"
		case ">>>":
			op = ">>"
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "~", "!", "-", "&", "|", "^", "+":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return &Unary{Op: t.text, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("[") {
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atPunct(":") {
			p.advance()
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &RangeSel{X: x, MSB: first, LSB: lsb}
			continue
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		x = &Index{X: x, Idx: first}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent:
		p.advance()
		return &Ident{Name: t.text}, nil

	case t.kind == tokNumber:
		p.advance()
		return parseNumber(t)

	case p.atPunct("("):
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return x, nil

	case p.atPunct("{"):
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Replication: {n{expr}}.
		if p.atPunct("{") {
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return &Repeat{Count: first, X: inner}, nil
		}
		cat := &Concat{Parts: []Expr{first}}
		for p.atPunct(",") {
			p.advance()
			part, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cat.Parts = append(cat.Parts, part)
		}
		if _, err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return cat, nil
	}
	return nil, p.errorf("unexpected %v in expression", t)
}

func parseNumber(t token) (Expr, error) {
	text := t.text
	mkErr := func(msg string) error {
		return &ParseError{Line: t.line, Col: t.col, Msg: msg}
	}
	clean := strings.ReplaceAll(text, "_", "")
	tick := strings.IndexByte(clean, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return nil, mkErr(fmt.Sprintf("bad number %q", text))
		}
		return &Number{Value: v, Width: 0, Text: text}, nil
	}
	width := uint(0)
	if tick > 0 {
		w, err := strconv.ParseUint(clean[:tick], 10, 8)
		if err != nil || w == 0 || w > 64 {
			return nil, mkErr(fmt.Sprintf("bad width in %q", text))
		}
		width = uint(w)
	} else {
		width = 32
	}
	rest := clean[tick+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return nil, mkErr(fmt.Sprintf("missing base in %q", text))
	}
	base := 10
	switch rest[0] {
	case 'h', 'H':
		base = 16
	case 'd', 'D':
		base = 10
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	default:
		return nil, mkErr(fmt.Sprintf("bad base in %q", text))
	}
	digits := rest[1:]
	if strings.ContainsAny(digits, "xXzZ") {
		return nil, mkErr("x/z values are outside the two-state subset")
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, mkErr(fmt.Sprintf("bad number %q", text))
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	return &Number{Value: v, Width: width, Text: text}, nil
}
