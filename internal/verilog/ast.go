package verilog

// SourceFile is a parsed Verilog file: an ordered list of modules.
type SourceFile struct {
	Modules []*Module
}

// FindModule returns the module with the given name, or nil.
func (f *SourceFile) FindModule(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota + 1
	DirOutput
	DirInout
)

// String returns the Verilog keyword for the direction.
func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "?"
}

// Module is a Verilog module declaration.
type Module struct {
	Name   string
	Params []*Param
	Ports  []*Port
	Items  []Item
	Line   int
}

// Param is a module parameter or localparam.
type Param struct {
	Name    string
	Value   Expr
	IsLocal bool
	Line    int
}

// Port is an ANSI-style module port.
type Port struct {
	Dir   PortDir
	IsReg bool
	// MSB/LSB are the range bounds; both nil for a 1-bit port.
	MSB, LSB Expr
	Name     string
	Line     int
}

// Item is a module-level item.
type Item interface{ isItem() }

// NetDecl declares one or more wires or regs, optionally with a packed
// range and (for memories) an unpacked array range.
type NetDecl struct {
	IsReg    bool
	MSB, LSB Expr // packed range, nil for 1-bit
	Names    []DeclName
	Line     int
}

// DeclName is one declarator within a NetDecl.
type DeclName struct {
	Name string
	// ArrMSB/ArrLSB give the memory bounds (reg [7:0] m [0:255]).
	ArrMSB, ArrLSB Expr
	// Init is the initializer of "wire x = expr;".
	Init Expr
}

// Assign is a continuous assignment: assign lhs = rhs.
type Assign struct {
	LHS  Expr // Ident, Index or RangeSel
	RHS  Expr
	Line int
}

// AlwaysFF is an always @(posedge clk) block.
type AlwaysFF struct {
	Clock string // clock signal name
	Body  Stmt
	Line  int
}

// AlwaysComb is an always @(*) block.
type AlwaysComb struct {
	Body Stmt
	Line int
}

// Instance is a module instantiation with named port connections.
type Instance struct {
	ModuleName string
	Name       string
	// ParamOverrides holds #(.NAME(expr)) overrides.
	ParamOverrides map[string]Expr
	// Conns maps formal port name -> actual expression (nil for
	// unconnected ports).
	Conns map[string]Expr
	Line  int
}

// ParamItem is a parameter declared in the module body.
type ParamItem struct {
	Param *Param
}

func (*NetDecl) isItem()    {}
func (*Assign) isItem()     {}
func (*AlwaysFF) isItem()   {}
func (*AlwaysComb) isItem() {}
func (*Instance) isItem()   {}
func (*ParamItem) isItem()  {}

// Stmt is a procedural statement.
type Stmt interface{ isStmt() }

// Block is a begin/end statement list.
type Block struct {
	Stmts []Stmt
}

// If is an if/else statement (Else may be nil).
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// Case is a case statement. Items with nil Labels form the default.
type Case struct {
	Subject Expr
	Items   []CaseItem
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	Labels []Expr // nil for default
	Body   Stmt
}

// NonBlocking is "lhs <= rhs" inside always @(posedge clk).
type NonBlocking struct {
	LHS Expr
	RHS Expr
}

// Blocking is "lhs = rhs" inside always @(*).
type Blocking struct {
	LHS Expr
	RHS Expr
}

func (*Block) isStmt()       {}
func (*If) isStmt()          {}
func (*Case) isStmt()        {}
func (*NonBlocking) isStmt() {}
func (*Blocking) isStmt()    {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// Ident references a signal or parameter.
type Ident struct {
	Name string
}

// Number is a literal; Width == 0 means unsized (treated as 32 bits).
type Number struct {
	Value uint64
	Width uint
	Text  string // original spelling, for the printer
}

// Unary applies an operator: ~ ! - & | ^ (last three are reductions).
type Unary struct {
	Op string
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op   string
	X, Y Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
}

// Index is a bit-select or memory element select: x[i].
type Index struct {
	X   Expr // Ident (possibly a memory)
	Idx Expr
}

// RangeSel is a constant part-select: x[msb:lsb].
type RangeSel struct {
	X        Expr
	MSB, LSB Expr
}

// Concat is {a, b, c}.
type Concat struct {
	Parts []Expr
}

// Repeat is {n{x}}.
type Repeat struct {
	Count Expr
	X     Expr
}

func (*Ident) isExpr()    {}
func (*Number) isExpr()   {}
func (*Unary) isExpr()    {}
func (*Binary) isExpr()   {}
func (*Ternary) isExpr()  {}
func (*Index) isExpr()    {}
func (*RangeSel) isExpr() {}
func (*Concat) isExpr()   {}
func (*Repeat) isExpr()   {}
