module hardsnap

go 1.22
