// Command hsasm assembles HS32 assembly into a raw firmware image,
// and disassembles images back to mnemonics.
//
// Usage:
//
//	hsasm -o firmware.bin [-base 0x0] [-symbols] input.s
//	hsasm -d firmware.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"hardsnap/internal/asm"
	"hardsnap/internal/buildinfo"
	"hardsnap/internal/isa"
)

func main() {
	out := flag.String("o", "a.bin", "output image path")
	base := flag.Uint64("base", 0, "load address")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	disasm := flag.Bool("d", false, "disassemble a binary image instead of assembling")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hsasm"))
		return
	}
	if *disasm {
		if err := runDisasm(uint32(*base), flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "hsasm:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, uint32(*base), *symbols, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hsasm:", err)
		os.Exit(1)
	}
}

func run(out string, base uint32, symbols bool, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hsasm [-o out.bin] [-base addr] [-symbols] input.s")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src), base)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, prog.Code, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes at %#x, entry %#x\n", out, len(prog.Code), prog.Base, prog.Entry)
	if symbols {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return prog.Symbols[names[i]] < prog.Symbols[names[j]]
		})
		for _, n := range names {
			fmt.Printf("%08x %s\n", prog.Symbols[n], n)
		}
	}
	return nil
}

// runDisasm prints one line per instruction word; undecodable words
// render as .word directives.
func runDisasm(base uint32, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hsasm -d image.bin")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	for off := 0; off+4 <= len(data); off += 4 {
		w := binary.LittleEndian.Uint32(data[off:])
		in, err := isa.Decode(w)
		if err != nil {
			fmt.Printf("%08x:  %08x  .word 0x%08x\n", base+uint32(off), w, w)
			continue
		}
		fmt.Printf("%08x:  %08x  %s\n", base+uint32(off), w, in)
	}
	if tail := len(data) % 4; tail != 0 {
		fmt.Printf("%08x:  (%d trailing byte(s))\n", base+uint32(len(data)-tail), tail)
	}
	return nil
}
