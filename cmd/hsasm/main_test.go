package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAssemblesFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fw.s")
	out := filepath.Join(dir, "fw.bin")
	if err := os.WriteFile(src, []byte("_start:\n\tnop\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, 0, true, []string{src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8 {
		t.Fatalf("image size %d", len(data))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("x.bin", 0, false, nil); err == nil {
		t.Fatal("missing input must fail")
	}
	if err := run("x.bin", 0, false, []string{"/nonexistent.s"}); err == nil {
		t.Fatal("unreadable input must fail")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "bad.s")
	os.WriteFile(src, []byte("bogus r1"), 0o644)
	if err := run(filepath.Join(dir, "o.bin"), 0, false, []string{src}); err == nil {
		t.Fatal("assembly error must propagate")
	}
}

func TestRunDisasm(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fw.s")
	out := filepath.Join(dir, "fw.bin")
	os.WriteFile(src, []byte("_start:\n\taddi r1, r0, 7\n\thalt\n"), 0o644)
	if err := run(out, 0, false, []string{src}); err != nil {
		t.Fatal(err)
	}
	if err := runDisasm(0, []string{out}); err != nil {
		t.Fatal(err)
	}
	if err := runDisasm(0, nil); err == nil {
		t.Fatal("missing args must fail")
	}
	if err := runDisasm(0, []string{"/nonexistent"}); err == nil {
		t.Fatal("unreadable file must fail")
	}
}
