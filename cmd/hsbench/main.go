// Command hsbench regenerates the paper's evaluation tables and
// figures (experiments E1-E18; see DESIGN.md for the experiment
// index).
//
// Usage:
//
//	hsbench            # run every experiment
//	hsbench e1 e4      # run selected experiments
//	hsbench -list      # list experiments
//	hsbench -json e4   # machine-readable metrics (JSON array)
//
// Profiling: -cpuprofile and -memprofile write pprof profiles of the
// selected experiments (inspect with `go tool pprof`). -latency sets
// the injected one-way link latency of the remote-protocol experiment
// (E12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hardsnap/internal/bench"
	"hardsnap/internal/buildinfo"
	"hardsnap/internal/sim"
)

// runOpts carries the CLI configuration into run.
type runOpts struct {
	list        bool
	jsonOut     bool
	interp      bool
	workers     int
	fuzzWorkers int
	latency     time.Duration
	cpuProfile  string
	memProfile  string
	args        []string
}

func main() {
	var opts runOpts
	flag.BoolVar(&opts.list, "list", false, "list experiments and exit")
	flag.BoolVar(&opts.jsonOut, "json", false,
		"emit machine-readable metrics as a JSON array of {experiment, metric, value, unit}")
	flag.BoolVar(&opts.interp, "interp", false,
		"run every experiment on the interpreter RTL engine instead of compiled bytecode")
	flag.IntVar(&opts.workers, "workers", 0,
		"cap the worker counts swept by the scaling experiment (E11); 0 keeps the default sweep")
	flag.IntVar(&opts.fuzzWorkers, "fuzz-workers", 0,
		"parallel fuzz workers for the hybrid-fuzzing experiment (E18); 0 keeps the default")
	flag.DurationVar(&opts.latency, "latency", -1,
		"injected one-way link latency of the remote-protocol experiment (E12), e.g. 500us; negative keeps the default")
	flag.StringVar(&opts.cpuProfile, "cpuprofile", "",
		"write a CPU profile of the selected experiments to this file")
	flag.StringVar(&opts.memProfile, "memprofile", "",
		"write a heap profile (after the experiments complete) to this file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hsbench"))
		return
	}
	opts.args = flag.Args()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "hsbench:", err)
		os.Exit(1)
	}
}

func run(opts runOpts) error {
	if opts.interp {
		sim.SetDefaultEngine(sim.EngineInterp)
	}
	bench.SetMaxWorkers(opts.workers)
	bench.SetFuzzWorkers(opts.fuzzWorkers)
	bench.SetRemoteLatency(opts.latency)
	if opts.list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []bench.Experiment
	if len(opts.args) == 0 {
		selected = bench.All()
	} else {
		for _, id := range opts.args {
			e, ok := bench.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}
	if opts.cpuProfile != "" {
		f, err := os.Create(opts.cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	metrics := []bench.Metric{}
	for i, e := range selected {
		if !opts.jsonOut && i > 0 {
			fmt.Println()
		}
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if opts.jsonOut {
			metrics = append(metrics, table.Metrics...)
			continue
		}
		fmt.Print(table)
	}
	if opts.memProfile != "" {
		f, err := os.Create(opts.memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // report live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(metrics)
	}
	return nil
}
