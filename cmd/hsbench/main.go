// Command hsbench regenerates the paper's evaluation tables and
// figures (experiments E1-E11; see DESIGN.md for the experiment
// index).
//
// Usage:
//
//	hsbench            # run every experiment
//	hsbench e1 e4      # run selected experiments
//	hsbench -list      # list experiments
//	hsbench -json e4   # machine-readable metrics (JSON array)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hardsnap/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false,
		"emit machine-readable metrics as a JSON array of {experiment, metric, value, unit}")
	workers := flag.Int("workers", 0,
		"cap the worker counts swept by the scaling experiment (E11); 0 keeps the default sweep")
	flag.Parse()
	if err := run(*list, *jsonOut, *workers, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hsbench:", err)
		os.Exit(1)
	}
}

func run(list, jsonOut bool, workers int, args []string) error {
	bench.SetMaxWorkers(workers)
	if list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var selected []bench.Experiment
	if len(args) == 0 {
		selected = bench.All()
	} else {
		for _, id := range args {
			e, ok := bench.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}
	metrics := []bench.Metric{}
	for i, e := range selected {
		if !jsonOut && i > 0 {
			fmt.Println()
		}
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if jsonOut {
			metrics = append(metrics, table.Metrics...)
			continue
		}
		fmt.Print(table)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(metrics)
	}
	return nil
}
