package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run(true, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// E5 is the fastest experiment.
	if err := run(false, false, []string{"e5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run(false, true, []string{"e5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run(false, false, []string{"e99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
