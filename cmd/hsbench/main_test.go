package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run(true, false, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// E5 is the fastest experiment.
	if err := run(false, false, 0, []string{"e5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run(false, true, 0, []string{"e5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaling(t *testing.T) {
	// The scaling experiment capped at 2 workers, JSON mode: must emit
	// worker and solver-cache metrics.
	if err := run(false, true, 2, []string{"e11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run(false, false, 0, []string{"e99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}
