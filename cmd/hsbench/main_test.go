package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(runOpts{list: true, latency: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelected(t *testing.T) {
	// E5 is the fastest experiment.
	if err := run(runOpts{latency: -1, args: []string{"e5"}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run(runOpts{jsonOut: true, latency: -1, args: []string{"e5"}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaling(t *testing.T) {
	// The scaling experiment capped at 2 workers, JSON mode: must emit
	// worker and solver-cache metrics.
	if err := run(runOpts{jsonOut: true, workers: 2, latency: -1, args: []string{"e11"}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run(runOpts{latency: -1, args: []string{"e99"}}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run(runOpts{
		jsonOut:    true,
		latency:    -1,
		cpuProfile: cpu,
		memProfile: mem,
		args:       []string{"e5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
