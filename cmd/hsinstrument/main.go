// Command hsinstrument inserts HardSnap's scan chain into Verilog
// sources (Fig. 3 of the paper: the B.1 instrumentation step).
//
// Usage:
//
//	hsinstrument -top uart [-o out.v] [-exclude sig1,sig2] [-param NAME=VAL] input.v
//
// The output re-parses with any Verilog-2005 tool chain; the report
// lists each module's chain composition and source-line overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"hardsnap/internal/buildinfo"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/verilog"
)

func main() {
	top := flag.String("top", "", "top module to instrument (required)")
	out := flag.String("o", "", "output path (default: stdout)")
	exclude := flag.String("exclude", "", "comma-separated register/memory names to skip")
	var params paramFlag
	flag.Var(&params, "param", "parameter override NAME=VALUE (repeatable)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hsinstrument"))
		return
	}
	if err := run(*top, *out, *exclude, params, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hsinstrument:", err)
		os.Exit(1)
	}
}

type paramFlag map[string]uint64

func (p *paramFlag) String() string { return fmt.Sprintf("%v", map[string]uint64(*p)) }

func (p *paramFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseUint(val, 0, 64)
	if err != nil {
		return err
	}
	if *p == nil {
		*p = paramFlag{}
	}
	(*p)[name] = v
	return nil
}

func run(top, out, exclude string, params map[string]uint64, args []string) error {
	if top == "" {
		return fmt.Errorf("-top is required")
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: hsinstrument -top MODULE [flags] input.v")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	file, err := verilog.Parse(string(src))
	if err != nil {
		return err
	}
	opts := scanchain.Options{Params: params}
	if exclude != "" {
		opts.Exclude = strings.Split(exclude, ",")
	}
	reports, err := scanchain.InstrumentAll(file, top, opts)
	if err != nil {
		return err
	}
	text := verilog.Print(file)
	if out == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		return err
	}

	names := make([]string, 0, len(reports))
	for n := range reports {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(os.Stderr, "module       chain bits  LoC before  LoC after  overhead")
	for _, n := range names {
		r := reports[n]
		fmt.Fprintf(os.Stderr, "%-12s %10d  %10d  %9d  %7.1f%%\n",
			n, r.ChainBits, r.OriginalLines, r.InstrumentedLines, 100*r.Overhead())
		for _, el := range r.Elements {
			fmt.Fprintf(os.Stderr, "  %-10s %-8s %d bits\n", el.Name, el.Kind, el.Bits)
		}
	}
	return nil
}
