package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInstruments(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "d.v")
	out := filepath.Join(dir, "d_scan.v")
	verilog := `
module d (input wire clk, input wire [3:0] x, output reg [3:0] y);
  always @(posedge clk) y <= x;
endmodule
`
	if err := os.WriteFile(src, []byte(verilog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("d", out, "", nil, []string{src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scan_enable") {
		t.Fatalf("output not instrumented:\n%s", data)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "", nil, []string{"x.v"}); err == nil {
		t.Fatal("missing -top must fail")
	}
	if err := run("top", "", "", nil, nil); err == nil {
		t.Fatal("missing input must fail")
	}
}

func TestParamFlag(t *testing.T) {
	var p paramFlag
	if err := p.Set("DEPTH=32"); err != nil {
		t.Fatal(err)
	}
	if p["DEPTH"] != 32 {
		t.Fatalf("%v", p)
	}
	if err := p.Set("garbage"); err == nil {
		t.Fatal("bad format must fail")
	}
	if err := p.Set("X=notanum"); err == nil {
		t.Fatal("bad value must fail")
	}
}
