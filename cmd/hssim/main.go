// Command hssim runs a peripheral as a standalone simulator process
// behind the HardSnap remote protocol — the paper's "self-contained
// simulator with a remote interface" (Fig. 3, A.2). A virtual machine
// (or any client of internal/remote) connects over TCP and performs
// register reads/writes, IRQ sampling and clock advancement.
//
// Both protocol generations are served on the same port: v3 clients
// (remote.Connect) get the full target surface — batched register
// ops, pipelining, wire snapshots with digest negotiation and worker
// spawning — while classic v2 clients (remote.NewClient) keep
// speaking one-op-per-frame against the hosted peripheral.
//
// Usage:
//
//	hssim -periph uart -listen 127.0.0.1:7700
//	hssim -source design.v -top mydev -listen 127.0.0.1:7700
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"

	"hardsnap/internal/buildinfo"
	"hardsnap/internal/bus"
	"hardsnap/internal/remote"
	"hardsnap/internal/sim"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

func main() {
	periphName := flag.String("periph", "", "corpus peripheral to host (gpio timer uart spi crc32 aes128 regfile)")
	source := flag.String("source", "", "custom Verilog file to host instead of -periph")
	top := flag.String("top", "", "top module of -source")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	fpga := flag.Bool("fpga", false, "model the FPGA target instead of the simulator")
	interp := flag.Bool("interp", false, "use the interpreter RTL engine instead of compiled bytecode")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	faultRate := flag.Float64("fault-rate", 0, "probability of dropping a protocol frame (half of it is also applied as bit corruption)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	latencyJitter := flag.Duration("latency-jitter", 0, "uniform extra per-frame latency in [0, jitter)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hssim"))
		return
	}
	if *interp {
		sim.SetDefaultEngine(sim.EngineInterp)
	}
	// The server runs until killed, so profiles flush from a signal
	// handler (SIGINT/SIGTERM) rather than a defer that would never
	// run.
	flush := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hssim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hssim:", err)
			os.Exit(1)
		}
		flush = pprof.StopCPUProfile
	}
	if *memprofile != "" {
		memPath, cpuFlush := *memprofile, flush
		flush = func() {
			cpuFlush()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hssim:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hssim:", err)
			}
		}
	}
	if *cpuprofile != "" || *memprofile != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			flush()
			os.Exit(0)
		}()
	}
	sched := target.FaultSchedule{
		Seed:          *faultSeed,
		DropRate:      *faultRate,
		CorruptRate:   *faultRate / 2,
		LatencyJitter: *latencyJitter,
	}
	if *faultRate == 0 && *latencyJitter == 0 {
		sched = target.FaultSchedule{}
	}
	err := run(*periphName, *source, *top, *listen, *fpga, sched)
	flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hssim:", err)
		os.Exit(1)
	}
}

// advPort couples a register port with whole-target clock advancement
// for the protocol's advance opcode.
type advPort struct {
	bus.Port
	tgt *target.Target
}

func (p *advPort) Advance(n uint64) error { return p.tgt.Advance(n) }

func run(periphName, source, top, listen string, fpga bool, sched target.FaultSchedule) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	return serveOn(ln, periphName, source, top, fpga, sched)
}

// serveOn hosts the peripheral behind the protocol on an existing
// listener (separated from run for testability). A non-zero fault
// schedule wraps every accepted connection in a deterministic fault
// injector, making the TCP link behave like the paper's flaky
// debugger transport.
func serveOn(ln net.Listener, periphName, source, top string, fpga bool, sched target.FaultSchedule) error {
	cfg := target.PeriphConfig{Name: "dev0", Periph: periphName}
	switch {
	case source != "":
		data, err := os.ReadFile(source)
		if err != nil {
			return err
		}
		cfg.Source = string(data)
		cfg.Top = top
		cfg.Periph = ""
	case periphName == "":
		return fmt.Errorf("one of -periph or -source is required")
	}

	clock := &vtime.Clock{}
	var tgt *target.Target
	var err error
	if fpga {
		tgt, err = target.NewFPGA("hssim", clock, []target.PeriphConfig{cfg}, false)
	} else {
		tgt, err = target.NewSimulator("hssim", clock, []target.PeriphConfig{cfg})
	}
	if err != nil {
		return err
	}
	port, err := tgt.Port("dev0")
	if err != nil {
		return err
	}
	fmt.Printf("hssim: hosting %s on %s (%s target, %d state bits)\n",
		describe(cfg), ln.Addr(), tgt.Kind(), tgt.StateBits())
	srv := remote.NewServer(tgt)
	srv.SetLegacyPort(&advPort{Port: port, tgt: tgt})
	var wrap func(net.Conn) net.Conn
	if sched != (target.FaultSchedule{}) {
		fmt.Printf("hssim: fault injection armed (seed %d, drop %.2f, corrupt %.2f, jitter %v)\n",
			sched.Seed, sched.DropRate, sched.CorruptRate, sched.LatencyJitter)
		wrap = func(conn net.Conn) net.Conn {
			return target.NewFaultConn(conn, sched)
		}
	}
	return srv.ListenAndServeWith(ln, wrap)
}

func describe(cfg target.PeriphConfig) string {
	if cfg.Source != "" {
		return "module " + cfg.Top
	}
	return cfg.Periph
}
