package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hardsnap/internal/remote"
	"hardsnap/internal/target"
)

func TestServeCorpusPeripheralOverTCP(t *testing.T) {
	// Run the server in a goroutine on an ephemeral port; we cannot
	// easily learn the port from run(), so build the pieces like run()
	// does but with a pre-made listener via the remote package.
	done := make(chan error, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- serveOn(ln, "gpio", "", "", false, target.FaultSchedule{}) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := remote.NewClient(conn)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := client.WriteReg(0, 0x77); err != nil {
		t.Fatal(err)
	}
	v, err := client.ReadReg(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x77 {
		t.Fatalf("readback %#x", v)
	}
	if err := client.Advance(10); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	ln.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestServeCustomSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "d.v")
	verilog := `
module dev (
  input wire clk, input wire rst, input wire sel, input wire wen,
  input wire [7:0] addr, input wire [31:0] wdata,
  output reg [31:0] rdata, output wire irq
);
  reg [31:0] r;
  assign irq = 1'b0;
  always @(*) rdata = r;
  always @(posedge clk)
    if (rst) r <= 0;
    else if (sel && wen) r <= wdata;
endmodule
`
	if err := os.WriteFile(src, []byte(verilog), 0o644); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveOn(ln, "", src, "dev", true, target.FaultSchedule{}) }()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := remote.NewClient(conn)
	if err := client.WriteReg(0, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := client.ReadReg(0); v != 42 {
		t.Fatalf("readback %d", v)
	}
	conn.Close()
	ln.Close()
	<-done
}

func TestServeWithFaultInjection(t *testing.T) {
	// The server-side fault injector drops and corrupts frames; a
	// retrying client must still complete every transaction.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	sched := target.FaultSchedule{Seed: 5, DropRate: 0.2, CorruptRate: 0.1}
	go func() { done <- serveOn(ln, "gpio", "", "", false, sched) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := remote.NewClient(conn)
	client.Timeout = 100 * time.Millisecond
	client.MaxRetries = 30
	client.Backoff = 200 * time.Microsecond
	client.BackoffMax = 2 * time.Millisecond
	for i := 0; i < 10; i++ {
		if err := client.WriteReg(0, uint32(0x100+i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		v, err := client.ReadReg(0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v != uint32(0x100+i) {
			t.Fatalf("readback %d: %#x", i, v)
		}
	}
	if client.Retries() == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	conn.Close()
	ln.Close()
	<-done
}

func TestServeV3ClientFullSurface(t *testing.T) {
	// The same port serves protocol v3: batched ops, snapshot
	// save/restore over the wire, and telemetry mirrors.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveOn(ln, "gpio", "", "", false, target.FaultSchedule{}) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c, err := remote.Connect(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	port, err := c.Port("dev0")
	if err != nil {
		t.Fatal(err)
	}
	if err := port.WriteReg(0, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(4); err != nil {
		t.Fatal(err)
	}
	st, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := port.WriteReg(0, 0x1); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(st); err != nil {
		t.Fatal(err)
	}
	v, err := port.ReadReg(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBEEF {
		t.Fatalf("restored readback %#x, want 0xBEEF", v)
	}
	conn.Close()
	ln.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", "", "127.0.0.1:0", false, target.FaultSchedule{}); err == nil {
		t.Fatal("missing -periph/-source must fail")
	}
}
