package main

import (
	"context"
	"testing"
	"time"

	"hardsnap/internal/farm"
)

func TestTenantFlag(t *testing.T) {
	tf := tenantFlag{}
	if err := tf.Set("acme"); err != nil {
		t.Fatal(err)
	}
	if err := tf.Set("widgets:250ms"); err != nil {
		t.Fatal(err)
	}
	if err := tf.Set("labs:1s:5000"); err != nil {
		t.Fatal(err)
	}
	if b := tf["acme"]; b != (farm.Budget{}) {
		t.Errorf("bare tenant budget: %+v", b)
	}
	if b := tf["widgets"]; b.VirtualTime != 250*time.Millisecond || b.SolverQueries != 0 {
		t.Errorf("widgets budget: %+v", b)
	}
	if b := tf["labs"]; b.VirtualTime != time.Second || b.SolverQueries != 5000 {
		t.Errorf("labs budget: %+v", b)
	}
	for _, bad := range []string{"", ":1s", "x:forever", "x:1s:many"} {
		if err := tf.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestRunStartsAndStops: the server binary comes up on an ephemeral
// port and shuts down cleanly on context cancellation.
func TestRunStartsAndStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, farm.Config{
			StateDir: t.TempDir(),
			Tenants:  map[string]farm.Budget{"default": {}},
		}, "127.0.0.1:0")
	}()
	time.Sleep(50 * time.Millisecond) // let it bind and print
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	// A bad listen address must error out, not hang.
	if err := run(context.Background(), farm.Config{
		Tenants: map[string]farm.Budget{"default": {}},
	}, "256.0.0.1:bogus"); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
