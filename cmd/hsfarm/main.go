// Command hsfarm serves exploration campaigns to multiple tenants: a
// TCP server around internal/farm that schedules submitted jobs
// fairly across tenants, enforces per-tenant virtual-time and
// solver-query budgets, admits jobs from a pool of pre-warmed
// targets, and journals parallel campaigns so a killed server resumes
// them on restart.
//
// Usage:
//
//	hsfarm -listen :7333 -state /var/lib/hsfarm \
//	       -tenant acme:10s:100000 -tenant widgets
//
// Each -tenant is NAME[:VIRTUAL-TIME[:SOLVER-QUERIES]]; omitted
// budget fields are unlimited. With no -tenant flags a single
// unlimited tenant named "default" is declared — what the hardsnap
// CLI's -farm mode submits as out of the box. SIGINT/SIGTERM shut the
// server down gracefully: running jobs flush their journals and are
// resumed by the next hsfarm on the same -state directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hardsnap/internal/buildinfo"
	"hardsnap/internal/dist"
	"hardsnap/internal/farm"
)

type tenantFlag map[string]farm.Budget

func (t tenantFlag) String() string { return fmt.Sprintf("%v", map[string]farm.Budget(t)) }

func (t tenantFlag) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	name := parts[0]
	if name == "" {
		return fmt.Errorf("empty tenant name in %q", s)
	}
	var b farm.Budget
	if len(parts) > 1 && parts[1] != "" {
		vt, err := time.ParseDuration(parts[1])
		if err != nil {
			return fmt.Errorf("tenant %s: bad virtual-time budget %q: %v", name, parts[1], err)
		}
		b.VirtualTime = vt
	}
	if len(parts) > 2 && parts[2] != "" {
		q, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("tenant %s: bad solver-query budget %q: %v", name, parts[2], err)
		}
		b.SolverQueries = q
	}
	t[name] = b
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7333", "TCP address to serve the farm protocol on")
	state := flag.String("state", "", "directory for job state and campaign journals (empty = no restart recovery)")
	slots := flag.Int("jobs", 2, "concurrently running jobs")
	pool := flag.Int("pool", 2, "pre-warmed targets per rig kind (negative disables pooling)")
	distMode := flag.Bool("dist", false, "serve the distributed-exploration worker protocol instead of the farm scheduler (pair with hardsnap -nodes)")
	tenants := tenantFlag{}
	flag.Var(tenants, "tenant", "declare a tenant NAME[:VIRTUAL-TIME[:SOLVER-QUERIES]] (repeatable; omitted budgets are unlimited)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hsfarm"))
		return
	}
	if len(tenants) == 0 {
		tenants["default"] = farm.Budget{}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *distMode {
		if err := runDist(ctx, *listen); err != nil {
			fmt.Fprintln(os.Stderr, "hsfarm:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(ctx, farm.Config{
		StateDir: *state,
		Slots:    *slots,
		PoolSize: *pool,
		Tenants:  tenants,
	}, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "hsfarm:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg farm.Config, listen string) error {
	f, err := farm.New(cfg)
	if err != nil {
		return err
	}
	srv := farm.NewServer(f)
	addr, err := srv.ListenAndServe(listen)
	if err != nil {
		f.Close()
		return err
	}
	names := make([]string, 0, len(cfg.Tenants))
	for name := range cfg.Tenants {
		names = append(names, name)
	}
	fmt.Printf("hsfarm: serving %d tenant(s) %v on %s (state %q, %d slots, pool %d)\n",
		len(names), names, addr, cfg.StateDir, cfg.Slots, cfg.PoolSize)

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "hsfarm: shutting down; journaled jobs resume on restart")
	srv.Close()
	f.Close()
	return nil
}

// runDist serves the distributed-exploration worker protocol: the
// node re-runs each campaign's deterministic seed phase and executes
// subtrees by index for a hardsnap -nodes driver.
func runDist(ctx context.Context, listen string) error {
	srv := dist.NewServer()
	addr, err := srv.ListenAndServe(listen)
	if err != nil {
		return err
	}
	fmt.Printf("hsfarm: serving dist worker protocol on %s\n", addr)
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "hsfarm: dist worker shutting down; in-flight subtrees are requeued by their drivers")
	srv.Close()
	return nil
}
