package main

import (
	"os"
	"path/filepath"
	"testing"

	"hardsnap/internal/target"
)

func TestRunFindsBug(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fw.s")
	fw := `
_start:
	li r1, 0x100
	addi r2, r0, 1
	addi r3, r0, 1
	ecall 1
	lbu r4, 0(r1)
	addi r5, r0, 7
	bne r4, r5, ok
	abort
ok:
	halt
`
	if err := os.WriteFile(src, []byte(fw), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(nil, nil, "hardsnap", "dfs", false, false, "one", 100000, 1, "on", true, t.TempDir(), []string{src})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (bug found)", code)
	}
	// With hardware attached and every mode.
	for _, mode := range []string{"hardsnap", "naive-reboot", "naive-shared", "record-replay"} {
		code, err = run([]target.PeriphConfig{{Name: "g", Periph: "gpio"}}, nil,
			mode, "bfs", true, false, "all", 100000, 4, "off", false, "", []string{src})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if code != 2 {
			t.Fatalf("mode %s: exit %d", mode, code)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := run(nil, nil, "hardsnap", "dfs", false, false, "one", 0, 1, "on", false, "", nil); err == nil {
		t.Fatal("missing firmware must fail")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "f.s")
	os.WriteFile(src, []byte("halt"), 0o644)
	if _, err := run(nil, nil, "bogus", "dfs", false, false, "one", 0, 1, "on", false, "", []string{src}); err == nil {
		t.Fatal("bad mode must fail")
	}
	if _, err := run(nil, nil, "hardsnap", "bogus", false, false, "one", 0, 1, "on", false, "", []string{src}); err == nil {
		t.Fatal("bad searcher must fail")
	}
	if _, err := run(nil, nil, "hardsnap", "dfs", false, false, "bogus", 0, 1, "on", false, "", []string{src}); err == nil {
		t.Fatal("bad policy must fail")
	}
	if _, err := run(nil, nil, "hardsnap", "dfs", false, false, "one", 0, 1, "bogus", false, "", []string{src}); err == nil {
		t.Fatal("bad solver-opt must fail")
	}
}

func TestPeriphFlag(t *testing.T) {
	var p periphFlag
	if err := p.Set("u0=uart"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Name != "u0" || p[0].Periph != "uart" {
		t.Fatalf("%+v", p)
	}
	if err := p.Set("nope"); err == nil {
		t.Fatal("bad format must fail")
	}
}
