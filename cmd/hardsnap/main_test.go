package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"hardsnap/internal/core"
	"hardsnap/internal/farm"
	"hardsnap/internal/target"
)

const buggyFirmware = `
_start:
	li r1, 0x100
	addi r2, r0, 1
	addi r3, r0, 1
	ecall 1
	lbu r4, 0(r1)
	addi r5, r0, 7
	bne r4, r5, ok
	abort
ok:
	halt
`

func writeFirmware(t *testing.T, fw string) string {
	t.Helper()
	src := filepath.Join(t.TempDir(), "fw.s")
	if err := os.WriteFile(src, []byte(fw), 0o644); err != nil {
		t.Fatal(err)
	}
	return src
}

// baseOpts is a valid single-worker software-only invocation; tests
// override fields per case.
func baseOpts(src string) runOpts {
	return runOpts{
		Mode:      "hardsnap",
		Searcher:  "dfs",
		Policy:    "one",
		MaxInstr:  100000,
		Workers:   1,
		SolverOpt: "on",
		Args:      []string{src},
	}
}

func TestRunFindsBug(t *testing.T) {
	src := writeFirmware(t, buggyFirmware)
	opts := baseOpts(src)
	opts.Verbose = true
	opts.ReportDir = t.TempDir()
	code, err := run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (bug found)", code)
	}
	// With hardware attached and every mode.
	for _, mode := range []string{"hardsnap", "naive-reboot", "naive-shared", "record-replay"} {
		opts := baseOpts(src)
		opts.Periphs = []target.PeriphConfig{{Name: "g", Periph: "gpio"}}
		opts.Mode = mode
		opts.Searcher = "bfs"
		opts.FPGA = true
		opts.Policy = "all"
		opts.Workers = 4
		opts.SolverOpt = "off"
		code, err := run(context.Background(), opts)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if code != 2 {
			t.Fatalf("mode %s: exit %d", mode, code)
		}
	}
}

// TestRunJournalAndResume drives the crash-safety surface end to end:
// a journaled parallel run completes and records a complete campaign;
// resuming the complete campaign is refused.
func TestRunJournalAndResume(t *testing.T) {
	src := writeFirmware(t, buggyFirmware)
	jpath := filepath.Join(t.TempDir(), "campaign.hsj")
	opts := baseOpts(src)
	opts.Workers = 4
	opts.Journal = jpath
	code, err := run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("journaled run: exit %d, want 2", code)
	}
	cam, err := core.LoadCampaign(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !cam.Complete {
		t.Fatal("journaled campaign not marked complete")
	}

	res := baseOpts(src)
	res.Workers = 0 // resume infers the worker count from the journal
	res.Resume = jpath
	if _, err := run(context.Background(), res); err == nil {
		t.Fatal("resume of a complete campaign must be refused")
	}
}

// TestRunInterrupted: a cancelled context stops a journaled campaign
// with exit status 3 and a resumable journal.
func TestRunInterrupted(t *testing.T) {
	src := writeFirmware(t, buggyFirmware)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run stops at its first check
	opts := baseOpts(src)
	opts.Workers = 4
	opts.Journal = filepath.Join(t.TempDir(), "campaign.hsj")
	code, err := run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("interrupted run: exit %d, want 3", code)
	}
}

func TestRunValidation(t *testing.T) {
	bad := func(mutate func(*runOpts)) error {
		src := writeFirmware(t, "_start:\n\thalt\n")
		opts := baseOpts(src)
		mutate(&opts)
		_, err := run(context.Background(), opts)
		return err
	}
	if err := bad(func(o *runOpts) { o.Args = nil }); err == nil {
		t.Fatal("missing firmware must fail")
	}
	if err := bad(func(o *runOpts) { o.Mode = "bogus" }); err == nil {
		t.Fatal("bad mode must fail")
	}
	if err := bad(func(o *runOpts) { o.Searcher = "bogus" }); err == nil {
		t.Fatal("bad searcher must fail")
	}
	if err := bad(func(o *runOpts) { o.Policy = "bogus" }); err == nil {
		t.Fatal("bad policy must fail")
	}
	if err := bad(func(o *runOpts) { o.SolverOpt = "bogus" }); err == nil {
		t.Fatal("bad solver-opt must fail")
	}
	if err := bad(func(o *runOpts) { o.Journal = "j.hsj" }); err == nil {
		t.Fatal("-journal with one worker must fail")
	}
	if err := bad(func(o *runOpts) { o.Journal = "j.hsj"; o.Resume = "r.hsj"; o.Workers = 4 }); err == nil {
		t.Fatal("-journal with -resume must fail")
	}
	if err := bad(func(o *runOpts) { o.Resume = "does-not-exist.hsj" }); err == nil {
		t.Fatal("resume of a missing journal must fail")
	}
}

func TestPeriphFlag(t *testing.T) {
	var p periphFlag
	if err := p.Set("u0=uart"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Name != "u0" || p[0].Periph != "uart" {
		t.Fatalf("%+v", p)
	}
	if err := p.Set("nope"); err == nil {
		t.Fatal("bad format must fail")
	}
}

// TestRunFarmMode drives the CLI's -farm client mode against an
// in-process farm server: the submitted job must find the bug (exit
// 2) exactly like a local run.
func TestRunFarmMode(t *testing.T) {
	f, err := farm.New(farm.Config{
		StateDir: t.TempDir(),
		Tenants:  map[string]farm.Budget{"default": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	srv := farm.NewServer(f)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	src := writeFirmware(t, buggyFirmware)
	opts := baseOpts(src)
	opts.Periphs = []target.PeriphConfig{{Name: "g", Periph: "gpio"}}
	opts.Workers = 4
	opts.Farm = addr.String()
	opts.Tenant = "default"
	code, err := run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("farm run: exit %d, want 2 (bug found)", code)
	}

	// Local-run flags make no sense with -farm.
	opts.Journal = "j.hsj"
	if _, err := run(context.Background(), opts); err == nil {
		t.Fatal("-farm with -journal must fail")
	}
	// An undeclared tenant is rejected by the server.
	opts.Journal = ""
	opts.Tenant = "ghost"
	if _, err := run(context.Background(), opts); err == nil {
		t.Fatal("unknown tenant must fail")
	}
}
