// Command hardsnap runs a hardware/software co-testing analysis:
// symbolic execution of HS32 firmware with Verilog peripherals in the
// loop and per-path hardware snapshots.
//
// Usage:
//
//	hardsnap -periph uart0=uart -periph timer0=timer firmware.s
//
// Flags select the consistency mode (hardsnap / naive-reboot /
// naive-shared), the state-selection heuristic, the hardware target
// (simulator or FPGA) and the concretization policy. -journal makes a
// parallel campaign crash-safe (append-only frontier journal);
// -resume continues a journaled campaign after an interrupt or crash.
// The exit status is 2 when bugs are found, 3 when the run was
// interrupted (SIGINT/SIGTERM) with its journal flushed for resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

// runOpts carries every knob of one CLI invocation.
type runOpts struct {
	Periphs   []target.PeriphConfig
	Asserts   []target.HWAssertion
	Mode      string
	Searcher  string
	FPGA      bool
	Readback  bool
	Policy    string
	MaxInstr  uint64
	Workers   int
	SolverOpt string
	Verbose   bool
	ReportDir string
	// Journal enables campaign journaling to this path; Resume
	// continues the campaign journaled at this path.
	Journal string
	Resume  string
	// Args is the positional firmware path.
	Args []string
}

func main() {
	var opts runOpts
	var periphs periphFlag
	flag.Var(&periphs, "periph", "peripheral NAME=KIND (repeatable; kinds: gpio timer uart spi crc32 aes128 regfile)")
	var asserts assertFlag
	flag.Var(&asserts, "assert", "hardware property PERIPH:NAME:EXPR (repeatable, simulator target only)")
	flag.StringVar(&opts.Mode, "mode", "hardsnap", "consistency mode: hardsnap | naive-reboot | naive-shared | record-replay")
	flag.StringVar(&opts.Searcher, "searcher", "dfs", "state selection: dfs | bfs | round-robin | random | coverage")
	flag.BoolVar(&opts.FPGA, "fpga", false, "host peripherals on the FPGA target")
	flag.BoolVar(&opts.Readback, "readback", false, "use FPGA readback snapshots instead of the scan chain")
	flag.StringVar(&opts.Policy, "concretize", "one", "boundary concretization policy: one | all")
	flag.Uint64Var(&opts.MaxInstr, "max-instructions", 2_000_000, "total instruction budget")
	flag.IntVar(&opts.Workers, "workers", 1, "parallel exploration workers (0 = one per CPU)")
	flag.StringVar(&opts.SolverOpt, "solver-opt", "on", "solver query-optimization stack (rewrite/slice/reuse/incremental): on | off")
	flag.BoolVar(&opts.Verbose, "v", false, "print per-path detail")
	flag.StringVar(&opts.ReportDir, "report", "", "write per-bug crash reports (test vector, model, hardware snapshot) to this directory")
	flag.StringVar(&opts.Journal, "journal", "", "journal the parallel campaign to this file (crash-safe; resume with -resume)")
	flag.StringVar(&opts.Resume, "resume", "", "resume the journaled campaign at this file (workers default to the journaled count)")
	flag.Parse()
	opts.Periphs = periphs
	opts.Asserts = asserts
	opts.Args = flag.Args()

	// SIGINT/SIGTERM cancel the run cleanly: in-flight subtrees stop,
	// the journal is flushed, and the exit status says "resumable".
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	code, err := run(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hardsnap:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type periphFlag []target.PeriphConfig

func (p *periphFlag) String() string { return fmt.Sprintf("%v", []target.PeriphConfig(*p)) }

func (p *periphFlag) Set(s string) error {
	name, kind, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=KIND, got %q", s)
	}
	*p = append(*p, target.PeriphConfig{Name: name, Periph: kind})
	return nil
}

func pickSearcher(name string) (symexec.Searcher, error) {
	switch name {
	case "dfs":
		return symexec.DFS{}, nil
	case "bfs":
		return symexec.BFS{}, nil
	case "round-robin":
		return &symexec.RoundRobin{}, nil
	case "random":
		return symexec.NewRandom(1), nil
	case "coverage":
		return symexec.NewCoverage(), nil
	}
	return nil, fmt.Errorf("unknown searcher %q", name)
}

func pickMode(name string) (core.Mode, error) {
	switch name {
	case "hardsnap":
		return core.ModeHardSnap, nil
	case "naive-reboot":
		return core.ModeNaiveReboot, nil
	case "naive-shared":
		return core.ModeNaiveShared, nil
	case "record-replay":
		return core.ModeRecordReplay, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

type assertFlag []target.HWAssertion

func (a *assertFlag) String() string { return fmt.Sprintf("%v", []target.HWAssertion(*a)) }

func (a *assertFlag) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want PERIPH:NAME:EXPR, got %q", s)
	}
	*a = append(*a, target.HWAssertion{Periph: parts[0], Name: parts[1], Expr: parts[2]})
	return nil
}

func run(ctx context.Context, opts runOpts) (int, error) {
	if len(opts.Args) != 1 {
		return 0, fmt.Errorf("usage: hardsnap [flags] firmware.s")
	}
	src, err := os.ReadFile(opts.Args[0])
	if err != nil {
		return 0, err
	}
	mode, err := pickMode(opts.Mode)
	if err != nil {
		return 0, err
	}
	searcher, err := pickSearcher(opts.Searcher)
	if err != nil {
		return 0, err
	}
	pol := symexec.ConcretizeOne
	if opts.Policy == "all" {
		pol = symexec.ConcretizeAll
	} else if opts.Policy != "one" {
		return 0, fmt.Errorf("unknown policy %q", opts.Policy)
	}
	workers := opts.Workers
	if workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if workers == 0 {
		workers = core.AutoWorkers()
	}
	if opts.SolverOpt != "on" && opts.SolverOpt != "off" {
		return 0, fmt.Errorf("-solver-opt must be on or off, got %q", opts.SolverOpt)
	}
	var cam *core.Campaign
	journalPath := opts.Journal
	if opts.Resume != "" {
		if opts.Journal != "" {
			return 0, fmt.Errorf("-journal and -resume are mutually exclusive (a resumed campaign keeps appending to its own journal)")
		}
		cam, err = core.LoadCampaign(opts.Resume)
		if err != nil {
			return 0, err
		}
		journalPath = opts.Resume
		if opts.Workers <= 1 {
			// The journal knows the campaign's worker count; honor it
			// unless the user explicitly asked for more.
			workers = cam.Header.Workers
		}
		fmt.Printf("resuming campaign %s: %d journaled subtree(s), %d workers\n",
			opts.Resume, len(cam.Results), workers)
	}
	if opts.Journal != "" && workers <= 1 {
		return 0, fmt.Errorf("-journal requires parallel exploration (-workers > 1)")
	}

	analysis, err := core.Setup(core.SetupConfig{
		Firmware:     string(src),
		Peripherals:  opts.Periphs,
		FPGA:         opts.FPGA,
		Readback:     opts.Readback,
		HWAssertions: opts.Asserts,
		Exec:         symexec.Config{Policy: pol, DisableSolverOpt: opts.SolverOpt == "off"},
		Engine: core.Config{
			Mode:             mode,
			Searcher:         searcher,
			MaxInstructions:  opts.MaxInstr,
			Workers:          workers,
			KeepBugSnapshots: opts.ReportDir != "",
			JournalPath:      opts.Journal,
			Resume:           cam,
		},
	})
	if err != nil {
		return 0, err
	}
	if len(opts.Periphs) > 0 {
		fmt.Printf("SoC: %d peripheral(s) on %s target\n", len(opts.Periphs), analysis.Target.Kind())
		for i, r := range analysis.Router.Regions() {
			fmt.Printf("  %-10s @ %#x (irq %d)\n", r.Name, analysis.PeriphBase(i), r.IRQ)
		}
	}

	rep, err := analysis.Engine.RunContext(ctx)
	if errors.Is(err, core.ErrInterrupted) {
		if journalPath != "" {
			fmt.Fprintf(os.Stderr, "hardsnap: interrupted; journal flushed — continue with: hardsnap -resume %s %s\n",
				journalPath, opts.Args[0])
		} else {
			fmt.Fprintln(os.Stderr, "hardsnap: interrupted (no -journal; the run cannot be resumed)")
		}
		return 3, nil
	}
	if err != nil {
		return 0, err
	}

	fmt.Printf("\npaths: %d  instructions: %d  context switches: %d  virtual time: %v\n",
		len(rep.Finished), rep.Stats.Instructions, rep.Stats.ContextSwitches,
		rep.VirtualTime.Round(time.Microsecond))
	fmt.Printf("solver: %d queries in %v  (sliced %d, model hits %d, rewrites %d, incremental reuses %d, unknowns %d)\n",
		rep.Solver.Queries, time.Duration(rep.Solver.WallNS).Round(time.Microsecond),
		rep.Solver.Sliced, rep.Solver.ModelHits, rep.Solver.Rewrites,
		rep.Solver.IncrementalReuses, rep.Exec.SolverUnknowns)
	if len(rep.Workers) > 0 {
		fmt.Printf("parallel: %d workers, seed phase %v, solver cache %.0f%% hit (%d/%d)\n",
			len(rep.Workers), rep.SeedVirtualTime.Round(time.Microsecond),
			100*rep.SolverCache.HitRate(), rep.SolverCache.Hits,
			rep.SolverCache.Hits+rep.SolverCache.Misses)
		for _, w := range rep.Workers {
			fmt.Printf("  worker %d: %d subtree(s), %d path(s), %v, %d save(s), %d restore(s), %d B moved\n",
				w.Worker, w.Subtrees, w.Paths, w.VirtualTime.Round(time.Microsecond),
				w.HWSaves, w.HWRestores, w.BytesMoved)
		}
	}
	rec := rep.Recovery
	if rec.WorkerRestarts > 0 || rec.Requeues > 0 || rec.FailoverEvents > 0 ||
		rec.PanicsRecovered > 0 || rec.HeartbeatDeaths > 0 || rec.ResumedSubtrees > 0 {
		fmt.Printf("recovery: %d worker restart(s), %d requeue(s), %d panic(s) recovered, %d heartbeat death(s), %d failover(s), %d resumed subtree(s), recovery wall %v\n",
			rec.WorkerRestarts, rec.Requeues, rec.PanicsRecovered,
			rec.HeartbeatDeaths, rec.FailoverEvents, rec.ResumedSubtrees,
			rec.RecoveryWall.Round(time.Microsecond))
	}
	if rec.JournalRecords > 0 {
		fmt.Printf("journal: %d record(s), %d B written to %s\n",
			rec.JournalRecords, rec.JournalBytes, journalPath)
	}
	if opts.Verbose {
		for _, st := range rep.Finished {
			fmt.Printf("  path %-4d %-14v pc=%#x steps=%d", st.ID, st.Status, st.PC, st.Steps)
			if len(st.Console) > 0 {
				fmt.Printf(" console=%q", st.Console)
			}
			fmt.Println()
		}
	}
	bugs := rep.Bugs()
	for _, bug := range bugs {
		fmt.Printf("BUG: %v at pc=%#x\n", bug.Status, bug.PC)
		if bug.Model != nil {
			fmt.Printf("     model: %v\n", bug.Model)
		}
	}
	if opts.ReportDir != "" && len(bugs) > 0 {
		n, err := analysis.WriteCrashReports(opts.ReportDir, rep)
		if err != nil {
			return 0, err
		}
		fmt.Printf("wrote %d crash report(s) to %s\n", n, opts.ReportDir)
	}
	if len(bugs) > 0 {
		return 2, nil
	}
	return 0, nil
}
