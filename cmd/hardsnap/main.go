// Command hardsnap runs a hardware/software co-testing analysis:
// symbolic execution of HS32 firmware with Verilog peripherals in the
// loop and per-path hardware snapshots.
//
// Usage:
//
//	hardsnap -periph uart0=uart -periph timer0=timer firmware.s
//
// Flags select the consistency mode (hardsnap / naive-reboot /
// naive-shared), the state-selection heuristic, the hardware target
// (simulator or FPGA) and the concretization policy. -journal makes a
// parallel campaign crash-safe (append-only frontier journal);
// -resume continues a journaled campaign after an interrupt or crash.
// -farm submits the campaign to an hsfarm server instead of running
// it locally. The exit status is 2 when bugs are found, 3 when the
// run was interrupted (SIGINT/SIGTERM) with its journal flushed for
// resume.
//
// -fuzz switches from symbolic exploration to coverage-guided
// fuzzing of the same firmware and SoC: -fuzz-workers parallel
// workers over snapshot resets, -hybrid for the concolic feedback
// loop, -corpus to persist the corpus and crash buckets across runs,
// -json for a machine-readable result. Exit status 2 means crashes
// were found.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hardsnap/internal/asm"
	"hardsnap/internal/buildinfo"
	"hardsnap/internal/campaign"
	"hardsnap/internal/core"
	"hardsnap/internal/dist"
	"hardsnap/internal/farm"
	"hardsnap/internal/fuzz"
	"hardsnap/internal/target"
)

// runOpts carries every knob of one CLI invocation.
type runOpts struct {
	Periphs   []target.PeriphConfig
	Asserts   []target.HWAssertion
	Mode      string
	Searcher  string
	FPGA      bool
	Readback  bool
	Policy    string
	MaxInstr  uint64
	Workers   int
	Fanout    int
	SolverOpt string
	Verbose   bool
	ReportDir string
	// Journal enables campaign journaling to this path; Resume
	// continues the campaign journaled at this path.
	Journal string
	Resume  string
	// Farm submits the job to an hsfarm server at this address
	// instead of running locally; Tenant names the submitter.
	Farm   string
	Tenant string
	// Nodes fans the campaign's subtrees out to these dist workers
	// (comma-separated host:port list).
	Nodes string
	// Fuzz switches to coverage-guided fuzzing mode; the remaining
	// fields parameterize the campaign (see internal/fuzz).
	Fuzz         bool
	FuzzExecs    int
	FuzzWorkers  int
	FuzzInputLen int
	FuzzSeed     int64
	Hybrid       bool
	Corpus       string
	JSON         bool
	// Args is the positional firmware path.
	Args []string
}

func main() {
	var opts runOpts
	var periphs periphFlag
	flag.Var(&periphs, "periph", "peripheral NAME=KIND (repeatable; kinds: gpio timer uart spi crc32 aes128 regfile)")
	var asserts assertFlag
	flag.Var(&asserts, "assert", "hardware property PERIPH:NAME:EXPR (repeatable, simulator target only)")
	flag.StringVar(&opts.Mode, "mode", "hardsnap", "consistency mode: hardsnap | naive-reboot | naive-shared | record-replay")
	flag.StringVar(&opts.Searcher, "searcher", "dfs", "state selection: dfs | bfs | round-robin | random | coverage")
	flag.BoolVar(&opts.FPGA, "fpga", false, "host peripherals on the FPGA target")
	flag.BoolVar(&opts.Readback, "readback", false, "use FPGA readback snapshots instead of the scan chain")
	flag.StringVar(&opts.Policy, "concretize", "one", "boundary concretization policy: one | all")
	flag.Uint64Var(&opts.MaxInstr, "max-instructions", 2_000_000, "total instruction budget")
	flag.IntVar(&opts.Workers, "workers", 1, "parallel exploration workers (0 = one per CPU)")
	flag.IntVar(&opts.Fanout, "seed-fanout", 0, "seed-phase fan-out width (0 = workers x 4); deeper queues help -nodes runs hide link latency")
	flag.StringVar(&opts.SolverOpt, "solver-opt", "on", "solver query-optimization stack (rewrite/slice/reuse/incremental): on | off")
	flag.BoolVar(&opts.Verbose, "v", false, "print per-path detail")
	flag.StringVar(&opts.ReportDir, "report", "", "write per-bug crash reports (test vector, model, hardware snapshot) to this directory")
	flag.StringVar(&opts.Journal, "journal", "", "journal the parallel campaign to this file (crash-safe; resume with -resume)")
	flag.StringVar(&opts.Resume, "resume", "", "resume the journaled campaign at this file (workers default to the journaled count)")
	flag.StringVar(&opts.Farm, "farm", "", "submit the campaign to the hsfarm server at this address instead of running locally")
	flag.StringVar(&opts.Tenant, "tenant", "default", "tenant name for -farm submissions")
	flag.StringVar(&opts.Nodes, "nodes", "", "distribute subtrees to these dist workers (comma-separated host:port; start each with hsfarm -dist)")
	flag.BoolVar(&opts.Fuzz, "fuzz", false, "coverage-guided fuzzing instead of symbolic exploration")
	flag.IntVar(&opts.FuzzExecs, "fuzz-execs", 1000, "test-case budget for -fuzz, split across workers")
	flag.IntVar(&opts.FuzzWorkers, "fuzz-workers", 1, "parallel fuzz workers for -fuzz")
	flag.IntVar(&opts.FuzzInputLen, "fuzz-input-len", 8, "test-case size in bytes for -fuzz")
	flag.Int64Var(&opts.FuzzSeed, "fuzz-seed", 1, "campaign rng seed for -fuzz (single-worker runs are byte-for-byte reproducible)")
	flag.BoolVar(&opts.Hybrid, "hybrid", false, "with -fuzz: solve frontier branches concolically and inject the models as seeds")
	flag.StringVar(&opts.Corpus, "corpus", "", "with -fuzz: persist corpus + crash buckets in this directory (suppressions.txt mutes known buckets)")
	flag.BoolVar(&opts.JSON, "json", false, "with -fuzz: emit the campaign result as JSON on stdout")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("hardsnap"))
		return
	}
	opts.Periphs = periphs
	opts.Asserts = asserts
	opts.Args = flag.Args()

	// SIGINT/SIGTERM cancel the run cleanly: in-flight subtrees stop,
	// the journal is flushed, and the exit status says "resumable".
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	code, err := run(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hardsnap:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type periphFlag []target.PeriphConfig

func (p *periphFlag) String() string { return fmt.Sprintf("%v", []target.PeriphConfig(*p)) }

func (p *periphFlag) Set(s string) error {
	name, kind, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=KIND, got %q", s)
	}
	*p = append(*p, target.PeriphConfig{Name: name, Periph: kind})
	return nil
}

type assertFlag []target.HWAssertion

func (a *assertFlag) String() string { return fmt.Sprintf("%v", []target.HWAssertion(*a)) }

func (a *assertFlag) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want PERIPH:NAME:EXPR, got %q", s)
	}
	*a = append(*a, target.HWAssertion{Periph: parts[0], Name: parts[1], Expr: parts[2]})
	return nil
}

// buildJob compiles the CLI flags into a self-contained campaign job.
func buildJob(opts runOpts) (campaign.Job, error) {
	if len(opts.Args) != 1 {
		return campaign.Job{}, fmt.Errorf("usage: hardsnap [flags] firmware.s")
	}
	src, err := os.ReadFile(opts.Args[0])
	if err != nil {
		return campaign.Job{}, err
	}
	if opts.SolverOpt != "on" && opts.SolverOpt != "off" {
		return campaign.Job{}, fmt.Errorf("-solver-opt must be on or off, got %q", opts.SolverOpt)
	}
	workers := opts.Workers
	if workers < 0 {
		return campaign.Job{}, fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if workers == 0 {
		workers = core.AutoWorkers()
	}
	job := campaign.Job{
		Firmware:         string(src),
		Peripherals:      opts.Periphs,
		Assertions:       opts.Asserts,
		Mode:             opts.Mode,
		Searcher:         opts.Searcher,
		FPGA:             opts.FPGA,
		Readback:         opts.Readback,
		Concretize:       opts.Policy,
		DisableSolverOpt: opts.SolverOpt == "off",
		MaxInstructions:  opts.MaxInstr,
		Workers:          workers,
		SeedFanout:       opts.Fanout,
		KeepBugSnapshots: opts.ReportDir != "",
	}
	if err := job.Validate(); err != nil {
		return campaign.Job{}, err
	}
	return job, nil
}

func run(ctx context.Context, opts runOpts) (int, error) {
	if opts.Fuzz {
		return runFuzz(opts)
	}
	job, err := buildJob(opts)
	if err != nil {
		return 0, err
	}
	if opts.Farm != "" {
		if opts.Journal != "" || opts.Resume != "" || opts.ReportDir != "" {
			return 0, fmt.Errorf("-journal, -resume and -report are local-run flags; the farm journals jobs itself")
		}
		if opts.Nodes != "" {
			return 0, fmt.Errorf("-farm and -nodes are mutually exclusive (the farm schedules its own capacity)")
		}
		return runFarm(ctx, opts, job)
	}
	if opts.Nodes != "" {
		job.Nodes = strings.Split(opts.Nodes, ",")
	}

	var cam *core.Campaign
	journalPath := opts.Journal
	if opts.Resume != "" {
		if opts.Journal != "" {
			return 0, fmt.Errorf("-journal and -resume are mutually exclusive (a resumed campaign keeps appending to its own journal)")
		}
		cam, err = core.LoadCampaign(opts.Resume)
		if err != nil {
			return 0, err
		}
		journalPath = opts.Resume
		if opts.Workers <= 1 {
			// The journal knows the campaign's worker count; honor it
			// unless the user explicitly asked for more.
			job.Workers = cam.Header.Workers
		}
		fmt.Printf("resuming campaign %s: %d journaled subtree(s), %d workers\n",
			opts.Resume, len(cam.Results), job.Workers)
	}
	if opts.Journal != "" && job.Workers <= 1 {
		return 0, fmt.Errorf("-journal requires parallel exploration (-workers > 1)")
	}

	events := make(chan campaign.Event, 64)
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for ev := range events {
			if ev.Kind == campaign.EventStarted && len(opts.Periphs) > 0 {
				fmt.Printf("SoC: %d peripheral(s) on %s target\n", len(opts.Periphs), ev.Target)
				for _, line := range ev.SoC {
					fmt.Printf("  %s\n", line)
				}
			}
		}
	}()
	var res *campaign.Result
	if len(job.Nodes) > 0 {
		// Distributed run: the dist driver fans subtrees out to the
		// remote nodes over the snapshot + solver-cache fabric and
		// merges to the same deterministic report a local run yields.
		res, err = dist.Run(ctx, job, dist.Options{
			Nodes:     job.Nodes,
			Journal:   opts.Journal,
			Resume:    cam,
			Events:    events,
			ReportDir: opts.ReportDir,
		})
	} else {
		res, err = campaign.Runner{}.Run(ctx, job, campaign.RunOptions{
			Journal:   opts.Journal,
			Resume:    cam,
			Events:    events,
			ReportDir: opts.ReportDir,
		})
	}
	close(events)
	<-printed
	if errors.Is(err, core.ErrInterrupted) {
		if journalPath != "" {
			fmt.Fprintf(os.Stderr, "hardsnap: interrupted; journal flushed — continue with: hardsnap -resume %s %s\n",
				journalPath, opts.Args[0])
		} else {
			fmt.Fprintln(os.Stderr, "hardsnap: interrupted (no -journal; the run cannot be resumed)")
		}
		return 3, nil
	}
	if err != nil {
		return 0, err
	}
	return printResult(res, opts, journalPath), nil
}

// runFuzz runs the coverage-guided fuzzing mode: a local campaign
// over the same firmware and SoC layout the exploration modes use.
func runFuzz(opts runOpts) (int, error) {
	if opts.Farm != "" || opts.Nodes != "" || opts.Journal != "" || opts.Resume != "" {
		return 0, fmt.Errorf("-fuzz is a local single-process mode; -farm, -nodes, -journal and -resume do not apply")
	}
	if len(opts.Args) != 1 {
		return 0, fmt.Errorf("usage: hardsnap -fuzz [flags] firmware.s")
	}
	src, err := os.ReadFile(opts.Args[0])
	if err != nil {
		return 0, err
	}
	prog, err := asm.Assemble(string(src), 0)
	if err != nil {
		return 0, err
	}
	cfg := fuzz.Config{
		Program:     prog,
		Peripherals: opts.Periphs,
		FPGA:        opts.FPGA,
		Reset:       fuzz.ResetSnapshot,
		MaxExecs:    opts.FuzzExecs,
		InputLen:    opts.FuzzInputLen,
		Seed:        opts.FuzzSeed,
		Workers:     opts.FuzzWorkers,
		Hybrid:      opts.Hybrid,
		CorpusDir:   opts.Corpus,
	}
	if opts.Verbose {
		cfg.Stats = os.Stderr
	}
	res, err := fuzz.Run(cfg)
	if err != nil {
		return 0, err
	}
	if opts.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 0, err
		}
	} else {
		fmt.Printf("fuzz: %d execs, %d workers, %d edges, corpus %d, virtual time %v (%.0f execs/vsec)\n",
			res.Execs, res.Workers, res.Edges, res.Corpus,
			res.VirtTime.Round(time.Microsecond), res.ExecsPerVirtSecond)
		if opts.Hybrid {
			fmt.Printf("hybrid: %d concolic replay(s), %d solved seed(s)\n",
				res.ConcolicRuns, res.SolvedSeeds)
		}
		if res.Suppressed > 0 {
			fmt.Printf("suppressed: %d crash occurrence(s) muted by %s\n",
				res.Suppressed, opts.Corpus)
		}
		for _, c := range res.Crashes {
			fmt.Printf("CRASH: %v at pc=%#x  input=%x  (hit %d time(s), first at exec %d)\n",
				c.Stop, c.PC, c.Input, c.Count, c.Exec)
		}
	}
	if len(res.Crashes) > 0 {
		return 2, nil
	}
	return 0, nil
}

// printResult renders the local-run report and returns the exit code.
func printResult(res *campaign.Result, opts runOpts, journalPath string) int {
	rep := res.Report
	fmt.Printf("\npaths: %d  instructions: %d  context switches: %d  virtual time: %v\n",
		len(rep.Finished), rep.Stats.Instructions, rep.Stats.ContextSwitches,
		rep.VirtualTime.Round(time.Microsecond))
	fmt.Printf("solver: %d queries in %v  (sliced %d, model hits %d, rewrites %d, incremental reuses %d, unknowns %d)\n",
		rep.Solver.Queries, time.Duration(rep.Solver.WallNS).Round(time.Microsecond),
		rep.Solver.Sliced, rep.Solver.ModelHits, rep.Solver.Rewrites,
		rep.Solver.IncrementalReuses, rep.Exec.SolverUnknowns)
	if len(rep.Workers) > 0 {
		fmt.Printf("parallel: %d workers, seed phase %v, solver cache %.0f%% hit (%d/%d)\n",
			len(rep.Workers), rep.SeedVirtualTime.Round(time.Microsecond),
			100*rep.SolverCache.HitRate(), rep.SolverCache.Hits,
			rep.SolverCache.Hits+rep.SolverCache.Misses)
		for _, w := range rep.Workers {
			fmt.Printf("  worker %d: %d subtree(s), %d path(s), %v, %d save(s), %d restore(s), %d B moved\n",
				w.Worker, w.Subtrees, w.Paths, w.VirtualTime.Round(time.Microsecond),
				w.HWSaves, w.HWRestores, w.BytesMoved)
		}
	}
	if len(rep.Nodes) > 0 {
		fmt.Printf("distributed: %d node(s)\n", len(rep.Nodes))
		for _, n := range rep.Nodes {
			fmt.Printf("  node %-21s %d subtree(s), %d path(s), %v, %d reconnect(s), solver cache %.0f%% hit, snapshots %d B on wire (%d B full)\n",
				n.Node, n.Subtrees, n.Paths, n.VirtualTime.Round(time.Microsecond),
				n.Reconnects, 100*n.SolverCache.HitRate(),
				n.SnapBytesShipped, n.SnapBytesFull)
		}
	}
	rec := rep.Recovery
	if rec.WorkerRestarts > 0 || rec.Requeues > 0 || rec.FailoverEvents > 0 ||
		rec.PanicsRecovered > 0 || rec.HeartbeatDeaths > 0 || rec.ResumedSubtrees > 0 {
		fmt.Printf("recovery: %d worker restart(s), %d requeue(s), %d panic(s) recovered, %d heartbeat death(s), %d failover(s), %d resumed subtree(s), recovery wall %v\n",
			rec.WorkerRestarts, rec.Requeues, rec.PanicsRecovered,
			rec.HeartbeatDeaths, rec.FailoverEvents, rec.ResumedSubtrees,
			rec.RecoveryWall.Round(time.Microsecond))
	}
	if rec.JournalRecords > 0 {
		fmt.Printf("journal: %d record(s), %d B written to %s\n",
			rec.JournalRecords, rec.JournalBytes, journalPath)
	}
	if opts.Verbose {
		for _, st := range rep.Finished {
			fmt.Printf("  path %-4d %-14v pc=%#x steps=%d", st.ID, st.Status, st.PC, st.Steps)
			if len(st.Console) > 0 {
				fmt.Printf(" console=%q", st.Console)
			}
			fmt.Println()
		}
	}
	for _, bug := range res.Bugs {
		fmt.Printf("BUG: %s at pc=%#x\n", bug.Status, bug.PC)
		if bug.Model != nil {
			fmt.Printf("     model: %v\n", bug.Model)
		}
	}
	if res.CrashReports > 0 {
		fmt.Printf("wrote %d crash report(s) to %s\n", res.CrashReports, opts.ReportDir)
	}
	if len(res.Bugs) > 0 {
		return 2
	}
	return 0
}

// runFarm submits the job to an hsfarm server, streams its progress
// and renders the result. Ctrl-C cancels the remote job.
func runFarm(ctx context.Context, opts runOpts, job campaign.Job) (int, error) {
	c, err := farm.Dial(opts.Farm)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	id, err := c.Submit(opts.Tenant, job)
	if err != nil {
		return 0, err
	}
	fmt.Printf("submitted job %s to %s (tenant %s)\n", id, opts.Farm, opts.Tenant)

	// An interrupt cancels the remote job on a second connection (the
	// first one is consumed by the stream below).
	watchdog := make(chan struct{})
	defer close(watchdog)
	go func() {
		select {
		case <-ctx.Done():
			if cc, err := farm.Dial(opts.Farm); err == nil {
				_ = cc.Cancel(id)
				cc.Close()
			}
		case <-watchdog:
		}
	}()

	err = c.Stream(id, func(ev campaign.Event) {
		switch ev.Kind {
		case campaign.EventStarted:
			if len(opts.Periphs) > 0 {
				fmt.Printf("SoC: %d peripheral(s) on %s target\n", len(opts.Periphs), ev.Target)
				for _, line := range ev.SoC {
					fmt.Printf("  %s\n", line)
				}
			}
		case campaign.EventBug:
			fmt.Printf("BUG: %s at pc=%#x\n", ev.Bug.Status, ev.Bug.PC)
			if ev.Bug.Model != nil {
				fmt.Printf("     model: %v\n", ev.Bug.Model)
			}
		}
	})
	if err != nil {
		return 0, err
	}

	// The stream only ends once the job is terminal; a fresh
	// connection fetches the authoritative outcome.
	rc, err := farm.Dial(opts.Farm)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	info, err := rc.Results(id)
	if err != nil {
		return 0, err
	}
	switch info.Status {
	case farm.StatusDone:
		res := info.Result
		fmt.Printf("\npaths: %d  instructions: %d  solver queries: %d  virtual time: %v\n",
			res.Paths, res.Instructions, res.SolverQueries, res.VirtualTime.Round(time.Microsecond))
		fmt.Printf("fingerprint: %s\n", res.Fingerprint)
		if info.Warm {
			fmt.Println("admission: warm (pooled target)")
		}
		if len(res.Bugs) > 0 {
			return 2, nil
		}
		return 0, nil
	case farm.StatusCancelled:
		fmt.Fprintln(os.Stderr, "hardsnap: farm job cancelled")
		return 3, nil
	default:
		return 0, fmt.Errorf("farm job %s: %s", info.Status, info.Error)
	}
}
