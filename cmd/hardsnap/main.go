// Command hardsnap runs a hardware/software co-testing analysis:
// symbolic execution of HS32 firmware with Verilog peripherals in the
// loop and per-path hardware snapshots.
//
// Usage:
//
//	hardsnap -periph uart0=uart -periph timer0=timer firmware.s
//
// Flags select the consistency mode (hardsnap / naive-reboot /
// naive-shared), the state-selection heuristic, the hardware target
// (simulator or FPGA) and the concretization policy. The exit status
// is 2 when bugs are found.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hardsnap/internal/core"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
)

func main() {
	var periphs periphFlag
	flag.Var(&periphs, "periph", "peripheral NAME=KIND (repeatable; kinds: gpio timer uart spi crc32 aes128 regfile)")
	var asserts assertFlag
	flag.Var(&asserts, "assert", "hardware property PERIPH:NAME:EXPR (repeatable, simulator target only)")
	mode := flag.String("mode", "hardsnap", "consistency mode: hardsnap | naive-reboot | naive-shared | record-replay")
	search := flag.String("searcher", "dfs", "state selection: dfs | bfs | round-robin | random | coverage")
	fpga := flag.Bool("fpga", false, "host peripherals on the FPGA target")
	readback := flag.Bool("readback", false, "use FPGA readback snapshots instead of the scan chain")
	policy := flag.String("concretize", "one", "boundary concretization policy: one | all")
	maxInstr := flag.Uint64("max-instructions", 2_000_000, "total instruction budget")
	workers := flag.Int("workers", 1, "parallel exploration workers (0 = one per CPU)")
	solverOpt := flag.String("solver-opt", "on", "solver query-optimization stack (rewrite/slice/reuse/incremental): on | off")
	verbose := flag.Bool("v", false, "print per-path detail")
	reportDir := flag.String("report", "", "write per-bug crash reports (test vector, model, hardware snapshot) to this directory")
	flag.Parse()

	code, err := run(periphs, asserts, *mode, *search, *fpga, *readback, *policy, *maxInstr, *workers, *solverOpt, *verbose, *reportDir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hardsnap:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type periphFlag []target.PeriphConfig

func (p *periphFlag) String() string { return fmt.Sprintf("%v", []target.PeriphConfig(*p)) }

func (p *periphFlag) Set(s string) error {
	name, kind, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=KIND, got %q", s)
	}
	*p = append(*p, target.PeriphConfig{Name: name, Periph: kind})
	return nil
}

func pickSearcher(name string) (symexec.Searcher, error) {
	switch name {
	case "dfs":
		return symexec.DFS{}, nil
	case "bfs":
		return symexec.BFS{}, nil
	case "round-robin":
		return &symexec.RoundRobin{}, nil
	case "random":
		return symexec.NewRandom(1), nil
	case "coverage":
		return symexec.NewCoverage(), nil
	}
	return nil, fmt.Errorf("unknown searcher %q", name)
}

func pickMode(name string) (core.Mode, error) {
	switch name {
	case "hardsnap":
		return core.ModeHardSnap, nil
	case "naive-reboot":
		return core.ModeNaiveReboot, nil
	case "naive-shared":
		return core.ModeNaiveShared, nil
	case "record-replay":
		return core.ModeRecordReplay, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

type assertFlag []target.HWAssertion

func (a *assertFlag) String() string { return fmt.Sprintf("%v", []target.HWAssertion(*a)) }

func (a *assertFlag) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want PERIPH:NAME:EXPR, got %q", s)
	}
	*a = append(*a, target.HWAssertion{Periph: parts[0], Name: parts[1], Expr: parts[2]})
	return nil
}

func run(periphs []target.PeriphConfig, asserts []target.HWAssertion, modeName, searchName string, fpga, readback bool,
	policyName string, maxInstr uint64, workers int, solverOpt string, verbose bool, reportDir string, args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("usage: hardsnap [flags] firmware.s")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return 0, err
	}
	mode, err := pickMode(modeName)
	if err != nil {
		return 0, err
	}
	searcher, err := pickSearcher(searchName)
	if err != nil {
		return 0, err
	}
	pol := symexec.ConcretizeOne
	if policyName == "all" {
		pol = symexec.ConcretizeAll
	} else if policyName != "one" {
		return 0, fmt.Errorf("unknown policy %q", policyName)
	}
	if workers < 0 {
		return 0, fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if workers == 0 {
		workers = core.AutoWorkers()
	}
	if solverOpt != "on" && solverOpt != "off" {
		return 0, fmt.Errorf("-solver-opt must be on or off, got %q", solverOpt)
	}

	analysis, err := core.Setup(core.SetupConfig{
		Firmware:     string(src),
		Peripherals:  periphs,
		FPGA:         fpga,
		Readback:     readback,
		HWAssertions: asserts,
		Exec:         symexec.Config{Policy: pol, DisableSolverOpt: solverOpt == "off"},
		Engine: core.Config{
			Mode:             mode,
			Searcher:         searcher,
			MaxInstructions:  maxInstr,
			Workers:          workers,
			KeepBugSnapshots: reportDir != "",
		},
	})
	if err != nil {
		return 0, err
	}
	if len(periphs) > 0 {
		fmt.Printf("SoC: %d peripheral(s) on %s target\n", len(periphs), analysis.Target.Kind())
		for i, r := range analysis.Router.Regions() {
			fmt.Printf("  %-10s @ %#x (irq %d)\n", r.Name, analysis.PeriphBase(i), r.IRQ)
		}
	}

	rep, err := analysis.Engine.Run()
	if err != nil {
		return 0, err
	}

	fmt.Printf("\npaths: %d  instructions: %d  context switches: %d  virtual time: %v\n",
		len(rep.Finished), rep.Stats.Instructions, rep.Stats.ContextSwitches,
		rep.VirtualTime.Round(time.Microsecond))
	fmt.Printf("solver: %d queries in %v  (sliced %d, model hits %d, rewrites %d, incremental reuses %d, unknowns %d)\n",
		rep.Solver.Queries, time.Duration(rep.Solver.WallNS).Round(time.Microsecond),
		rep.Solver.Sliced, rep.Solver.ModelHits, rep.Solver.Rewrites,
		rep.Solver.IncrementalReuses, rep.Exec.SolverUnknowns)
	if len(rep.Workers) > 0 {
		fmt.Printf("parallel: %d workers, seed phase %v, solver cache %.0f%% hit (%d/%d)\n",
			len(rep.Workers), rep.SeedVirtualTime.Round(time.Microsecond),
			100*rep.SolverCache.HitRate(), rep.SolverCache.Hits,
			rep.SolverCache.Hits+rep.SolverCache.Misses)
		for _, w := range rep.Workers {
			fmt.Printf("  worker %d: %d subtree(s), %d path(s), %v, %d save(s), %d restore(s), %d B moved\n",
				w.Worker, w.Subtrees, w.Paths, w.VirtualTime.Round(time.Microsecond),
				w.HWSaves, w.HWRestores, w.BytesMoved)
		}
	}
	if verbose {
		for _, st := range rep.Finished {
			fmt.Printf("  path %-4d %-14v pc=%#x steps=%d", st.ID, st.Status, st.PC, st.Steps)
			if len(st.Console) > 0 {
				fmt.Printf(" console=%q", st.Console)
			}
			fmt.Println()
		}
	}
	bugs := rep.Bugs()
	for _, bug := range bugs {
		fmt.Printf("BUG: %v at pc=%#x\n", bug.Status, bug.PC)
		if bug.Model != nil {
			fmt.Printf("     model: %v\n", bug.Model)
		}
	}
	if reportDir != "" && len(bugs) > 0 {
		n, err := analysis.WriteCrashReports(reportDir, rep)
		if err != nil {
			return 0, err
		}
		fmt.Printf("wrote %d crash report(s) to %s\n", n, reportDir)
	}
	if len(bugs) > 0 {
		return 2, nil
	}
	return 0, nil
}
