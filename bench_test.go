// Benchmarks regenerating the paper's evaluation artifacts (one
// benchmark group per table/figure; see DESIGN.md experiment index)
// plus micro-benchmarks of the core substrates. Where a benchmark
// models a paper measurement, the deterministic *virtual-time* result
// is attached via ReportMetric (vt-ns/op) next to Go's host-time
// measurement.
package hardsnap_test

import (
	"fmt"
	"testing"

	"hardsnap"
	"hardsnap/internal/bench"
	"hardsnap/internal/core"
	"hardsnap/internal/expr"
	"hardsnap/internal/fuzz"
	"hardsnap/internal/periph"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/sim"
	"hardsnap/internal/solver"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

// --- E1: snapshot save/restore per peripheral and method -----------

func benchSnapshot(b *testing.B, periphName string, fpga, readback bool) {
	b.Helper()
	clock := &vtime.Clock{}
	cfg := []target.PeriphConfig{{Name: "p", Periph: periphName}}
	var tgt *target.Target
	var err error
	if fpga {
		tgt, err = target.NewFPGA("t", clock, cfg, readback)
	} else {
		tgt, err = target.NewSimulator("t", clock, cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	if err := tgt.Advance(20); err != nil {
		b.Fatal(err)
	}
	before := clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := tgt.Save()
		if err != nil {
			b.Fatal(err)
		}
		if err := tgt.Restore(st); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	vt := clock.Now() - before
	b.ReportMetric(float64(vt.Nanoseconds())/float64(b.N), "vt-ns/op")
}

func BenchmarkSnapshotSimulator(b *testing.B) {
	for _, p := range []string{"gpio", "timer", "uart", "aes128"} {
		b.Run(p, func(b *testing.B) { benchSnapshot(b, p, false, false) })
	}
}

func BenchmarkSnapshotFPGAScan(b *testing.B) {
	for _, p := range []string{"gpio", "timer", "uart", "aes128"} {
		b.Run(p, func(b *testing.B) { benchSnapshot(b, p, true, false) })
	}
}

func BenchmarkSnapshotFPGAReadback(b *testing.B) {
	for _, p := range []string{"gpio", "timer", "uart", "aes128"} {
		b.Run(p, func(b *testing.B) { benchSnapshot(b, p, true, true) })
	}
}

// --- E2: scan-chain cost vs design size ----------------------------

func BenchmarkScanSweep(b *testing.B) {
	for _, depth := range []uint64{16, 64, 256} {
		b.Run(fmt.Sprintf("flops-%d", depth*32+16), func(b *testing.B) {
			clock := &vtime.Clock{}
			tgt, err := target.NewFPGA("t", clock, []target.PeriphConfig{{
				Name: "rf", Periph: "regfile",
				Params: map[string]uint64{"DEPTH": depth, "WIDTH": 32},
			}}, false)
			if err != nil {
				b.Fatal(err)
			}
			before := clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := tgt.Save()
				if err != nil {
					b.Fatal(err)
				}
				if err := tgt.Restore(st); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			vt := clock.Now() - before
			b.ReportMetric(float64(vt.Nanoseconds())/float64(b.N), "vt-ns/op")
		})
	}
}

// --- E3: I/O forwarding latency ------------------------------------

func BenchmarkForwarding(b *testing.B) {
	for _, kind := range []string{"simulator", "fpga"} {
		b.Run(kind, func(b *testing.B) {
			clock := &vtime.Clock{}
			cfg := []target.PeriphConfig{{Name: "g", Periph: "gpio"}}
			var tgt *target.Target
			var err error
			if kind == "fpga" {
				tgt, err = target.NewFPGA("t", clock, cfg, false)
			} else {
				tgt, err = target.NewSimulator("t", clock, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			port, err := tgt.Port("g")
			if err != nil {
				b.Fatal(err)
			}
			before := clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := port.WriteReg(0, uint32(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := port.ReadReg(0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			vt := clock.Now() - before
			b.ReportMetric(float64(vt.Nanoseconds())/float64(2*b.N), "vt-ns/access")
		})
	}
}

// --- E4: exploration with snapshots vs reboot ----------------------

func benchExploration(b *testing.B, mode core.Mode) {
	b.Helper()
	fw := explorationFirmware(3)
	for i := 0; i < b.N; i++ {
		a, err := core.Setup(core.SetupConfig{
			Firmware:    fw,
			Peripherals: []target.PeriphConfig{{Name: "g", Periph: "gpio"}},
			FPGA:        true,
			Engine: core.Config{
				Mode:            mode,
				Searcher:        symexec.BFS{},
				MaxInstructions: 2_000_000,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := a.Engine.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rep.VirtualTime.Nanoseconds()), "vt-ns/run")
			b.ReportMetric(float64(len(rep.Finished)), "paths")
		}
	}
}

func explorationFirmware(k int) string {
	src := `
_start:
		addi r10, r0, 100
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000
		li r1, 0x100
		addi r2, r0, ` + fmt.Sprintf("%d", k) + `
		addi r3, r0, 1
		ecall 1
		addi r7, r0, 0
`
	for i := 0; i < k; i++ {
		src += fmt.Sprintf(`
		lbu r4, %d(r1)
		andi r4, r4, 1
		beq r4, r0, skip%d
		addi r7, r7, 1
		sw r7, 0(r8)
skip%d:
`, i, i, i)
	}
	return src + "\t\thalt\n"
}

func BenchmarkExplorationHardSnap(b *testing.B) { benchExploration(b, core.ModeHardSnap) }
func BenchmarkExplorationReboot(b *testing.B)   { benchExploration(b, core.ModeNaiveReboot) }

// --- E6: instrumentation toolchain ---------------------------------

func BenchmarkInstrumentation(b *testing.B) {
	for _, p := range []string{"uart", "aes128"} {
		b.Run(p, func(b *testing.B) {
			spec, _ := periph.Lookup(p)
			for i := 0; i < b.N; i++ {
				f, err := spec.Parse()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := scanchain.InstrumentAll(f, spec.Top, scanchain.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: cross-target transfer -------------------------------------

func BenchmarkTransfer(b *testing.B) {
	clock := &vtime.Clock{}
	cfg := []target.PeriphConfig{{Name: "aes0", Periph: "aes128"}}
	fpga, err := target.NewFPGA("f", clock, cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	simT, err := target.NewSimulator("s", clock, cfg)
	if err != nil {
		b.Fatal(err)
	}
	before := clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := target.Transfer(fpga, simT); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	vt := clock.Now() - before
	b.ReportMetric(float64(vt.Nanoseconds())/float64(b.N), "vt-ns/op")
}

// --- E8: fuzzing reset strategies ----------------------------------

func benchFuzz(b *testing.B, reset fuzz.ResetStrategy) {
	b.Helper()
	prog, err := hardsnap.Assemble(`
_start:
		addi r10, r0, 50
init:
		addi r10, r10, -1
		bne r10, r0, init
		ecall 6
		li r1, 0x800
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		halt
	`, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := fuzz.Run(fuzz.Config{
			Program:  prog,
			Reset:    reset,
			MaxExecs: 50,
			InputLen: 4,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ExecsPerVirtSecond, "vt-execs/s")
		}
	}
}

func BenchmarkFuzzSnapshotReset(b *testing.B) { benchFuzz(b, fuzz.ResetSnapshot) }
func BenchmarkFuzzRebootReset(b *testing.B)   { benchFuzz(b, fuzz.ResetReboot) }

// --- substrate micro-benchmarks ------------------------------------

func BenchmarkRTLCycle(b *testing.B) {
	for _, p := range []string{"uart", "aes128"} {
		b.Run(p, func(b *testing.B) {
			design, _, err := periph.Build(p, nil, false)
			if err != nil {
				b.Fatal(err)
			}
			s, err := sim.New(design)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.StepCycle(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolver32BitEquation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eb := expr.NewBuilder()
		s := solver.New(0)
		x := eb.Var("x", 32)
		res, _, err := s.Check([]*expr.Term{
			eb.Eq(eb.Add(eb.Xor(x, eb.Const(0xDEADBEEF, 32)), eb.Const(0x1111, 32)), eb.Const(0xCAFEBABE, 32)),
		})
		if err != nil || res != solver.Sat {
			b.Fatalf("res %v err %v", res, err)
		}
	}
}

func BenchmarkSymbolicStep(b *testing.B) {
	prog, err := hardsnap.Assemble(`
_start:
		addi r1, r1, 1
		xor r2, r2, r1
		j _start
	`, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := symexec.New(symexec.Config{}, prog, nil)
	if err != nil {
		b.Fatal(err)
	}
	st := e.InitialState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Step(st); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment table validation -----------------------------------

// TestExperimentsRegenerate runs every experiment end-to-end and
// checks the shape properties the paper's conclusions rest on.
func TestExperimentsRegenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~1 minute; skipped in -short mode")
	}
	tables := make(map[string]*bench.Table)
	for _, e := range bench.All() {
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		tables[e.ID] = tbl
		t.Logf("\n%s", tbl)
	}

	// E1: per-method ordering scan < readback < CRIU for every corpus
	// member is visible in the rendered rows; spot check row count.
	if len(tables["E1"].Rows) != 4 {
		t.Errorf("E1 rows: %d", len(tables["E1"].Rows))
	}
	// E2: last row must be won by readback (crossover exists).
	e2 := tables["E2"].Rows
	if e2[len(e2)-1][3] != "readback" || e2[0][3] != "scan" {
		t.Errorf("E2 crossover shape broken: %v", e2)
	}
	// E5: hardsnap consistent, shared corrupted.
	for _, row := range tables["E5"].Rows {
		switch row[0] {
		case "hardsnap", "naive-reboot":
			if row[3] != "consistent" {
				t.Errorf("E5: %s should be consistent", row[0])
			}
		case "naive-shared":
			if row[3] != "CORRUPTED" {
				t.Errorf("E5: naive-shared should corrupt")
			}
		}
	}
	// E7: every transfer scenario must match.
	for _, row := range tables["E7"].Rows {
		if row[2] != "YES" {
			t.Errorf("E7: %s mismatch", row[0])
		}
	}
}
