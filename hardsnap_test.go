package hardsnap_test

import (
	"strings"
	"testing"

	"hardsnap"
)

// TestPublicAPIQuickstart drives a full analysis through the facade.
func TestPublicAPIQuickstart(t *testing.T) {
	analysis, err := hardsnap.Setup(hardsnap.SetupConfig{
		Firmware: `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 13
		bne r4, r5, ok
		abort
ok:
		halt`,
		Peripherals: []hardsnap.PeriphConfig{{Name: "timer0", Periph: "timer"}},
		Engine:      hardsnap.EngineConfig{Mode: hardsnap.ModeHardSnap},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := analysis.Engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	bugs := report.Bugs()
	if len(bugs) != 1 {
		t.Fatalf("bugs: %d", len(bugs))
	}
	if bugs[0].Model["sym1_0"] != 13 {
		t.Fatalf("model: %v", bugs[0].Model)
	}

	// The found bug replays concretely.
	res, err := analysis.Replay(bugs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reproduced {
		t.Fatalf("replay: %v at %#x", res.Stop, res.PC)
	}
}

func TestPublicAPIInstrument(t *testing.T) {
	src := `
module reg8 (input wire clk, input wire [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d;
endmodule`
	out, reports, err := hardsnap.InstrumentVerilog(src, "reg8", hardsnap.InstrumentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scan_enable") {
		t.Fatalf("no scan ports in output:\n%s", out)
	}
	if reports["reg8"].ChainBits != 8 {
		t.Fatalf("chain bits: %d", reports["reg8"].ChainBits)
	}
}

func TestPublicAPIPeripherals(t *testing.T) {
	specs := hardsnap.Peripherals()
	if len(specs) < 6 {
		t.Fatalf("corpus size: %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if s.Source() == "" {
			t.Errorf("peripheral %s has no source", s.Name)
		}
	}
	for _, want := range []string{"gpio", "timer", "uart", "spi", "crc32", "aes128", "regfile"} {
		if !names[want] {
			t.Errorf("missing corpus peripheral %q", want)
		}
	}
}

func TestPublicAPITransfer(t *testing.T) {
	// Assemble + fuzz through the facade.
	prog, err := hardsnap.Assemble(`
_start:
		ecall 6
		li r1, 0x800
		addi r2, r0, 2
		addi r3, r0, 1
		ecall 1
		lbu r4, 0(r1)
		addi r5, r0, 0x99
		bne r4, r5, ok
		abort
ok:
		halt`, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hardsnap.Fuzz(hardsnap.FuzzConfig{
		Program:  prog,
		Reset:    hardsnap.ResetSnapshot,
		MaxExecs: 500,
		InputLen: 2,
		Seeds:    [][]byte{{0x98, 0}},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Execs != 500 {
		t.Fatalf("execs: %d", res.Execs)
	}
}
