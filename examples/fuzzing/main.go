// Command fuzzing compares fuzzing throughput with HardSnap's
// snapshot-based state reset against the full-reboot baseline
// (the paper's motivation, quantified in experiment E8).
//
// The firmware is a small packet parser in front of the CRC-32
// peripheral: it initializes the device (expensive bring-up), then for
// each test case feeds the input through the engine and crashes on a
// rare header. Between test cases the machine must return to the
// post-init state — by rebooting, or by restoring a HardSnap snapshot.
package main

import (
	"fmt"
	"log"
	"time"

	"hardsnap"
)

const firmware = `
_start:
		; --- expensive bring-up: calibrate, self-test, zero memory ---
		addi r10, r0, 500
init:
		addi r10, r10, -1
		bne r10, r0, init
		li r8, 0x40000000  ; crc32 engine
		addi r4, r0, 1
		sw r4, 8(r8)       ; init CRC
		ecall 6            ; HardSnap snapshot point: clean device state

		; --- per-test-case work ---
		li r1, 0x800
		addi r2, r0, 6
		addi r3, r0, 1
		ecall 1            ; fetch test case (6 bytes)

		; checksum the payload through the hardware engine
		addi r11, r0, 0
feed:
		add r5, r1, r11
		lbu r6, 0(r5)
		sw r6, 0(r8)
poll:
		lw r7, 12(r8)
		bne r7, r0, poll
		addi r11, r11, 1
		slti r5, r11, 6
		bne r5, r0, feed

		; crash on the magic header "BUG"
		lbu r4, 0(r1)
		addi r5, r0, 66    ; 'B'
		bne r4, r5, ok
		lbu r4, 1(r1)
		addi r5, r0, 85    ; 'U'
		bne r4, r5, ok
		lbu r4, 2(r1)
		addi r5, r0, 71    ; 'G'
		bne r4, r5, ok
		abort
ok:
		halt
`

func main() {
	prog, err := hardsnap.Assemble(firmware, 0)
	if err != nil {
		log.Fatal(err)
	}

	run := func(reset hardsnap.FuzzConfig, label string) *hardsnap.FuzzResult {
		res, err := hardsnap.Fuzz(reset)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s execs=%4d  edges=%3d  crashes=%d  virt-time=%9v  execs/s(virt)=%8.1f\n",
			label, res.Execs, res.Edges, len(res.Crashes),
			res.VirtTime.Round(time.Millisecond), res.ExecsPerVirtSecond)
		return res
	}

	base := hardsnap.FuzzConfig{
		Program:     prog,
		Peripherals: []hardsnap.PeriphConfig{{Name: "crc0", Periph: "crc32"}},
		MaxExecs:    3000,
		InputLen:    6,
		Seeds:       [][]byte{[]byte("BUx___"), []byte("B_G___")},
		Seed:        2024,
	}

	fmt.Println("fuzzing the CRC packet parser (3000 execs each):")
	snapCfg := base
	snapCfg.Reset = hardsnap.ResetSnapshot
	snap := run(snapCfg, "snapshot")

	rebootCfg := base
	rebootCfg.Reset = hardsnap.ResetReboot
	reboot := run(rebootCfg, "reboot")

	fmt.Printf("\nsnapshot reset is %.1fx faster than reboot (virtual time)\n",
		float64(reboot.VirtTime)/float64(snap.VirtTime))
	if len(snap.Crashes) > 0 {
		fmt.Printf("first crashing input: %q (exec #%d)\n",
			snap.Crashes[0].Input, snap.Crashes[0].Exec)
	}
}
