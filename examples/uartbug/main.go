// Command uartbug reproduces the paper's headline use case: finding a
// firmware bug in a hardware driver, and showing why hardware
// snapshotting is necessary for the analysis to be trustworthy.
//
// The firmware implements a tiny command parser over the UART: it
// echoes bytes through the serial loopback and stores received
// payload bytes into a fixed 8-byte buffer, but trusts a
// symbolic length field — the classic missing bounds check. Symbolic
// execution finds the length value that overflows into the adjacent
// "canary" word.
//
// The same analysis is then run under the three hardware consistency
// strategies of Fig. 1, demonstrating that:
//   - HardSnap finds exactly the real bug,
//   - the naive shared-hardware mode corrupts paths (extra false
//     positives or lost interrupts),
//   - the reboot mode is correct but pays orders of magnitude more
//     virtual time.
package main

import (
	"fmt"
	"log"
	"time"

	"hardsnap"
)

const firmware = `
; UART register map at 0x40000000:
;   0x00 DATA  0x04 STATUS  0x08 CTRL  0x0C BAUD
_start:
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)       ; CTRL = loopback

		; Receive a "packet": [len][payload...] made symbolic directly
		; in RAM (the test vector the paper's testbench would inject).
		li r1, 0x600
		addi r2, r0, 10
		addi r3, r0, 1
		ecall 1            ; make_symbolic(pkt, 10, 1)

		; Send the first payload byte over the UART and wait for the
		; loopback echo, so the bug sits behind real hardware traffic.
		lbu r4, 1(r1)
		sw r4, 0(r8)       ; DATA <- payload[0]
echo_wait:
		lw r5, 4(r8)       ; STATUS
		andi r5, r5, 2     ; rx_avail
		beq r5, r0, echo_wait
		lw r6, 0(r8)       ; pop echoed byte

		; The echoed byte must equal what we sent (hardware sanity).
		lbu r4, 1(r1)
		sub r1, r6, r4
		sltiu r1, r1, 1
		ecall 2            ; assert echo == sent

		; Parse: copy payload[0..len) into an 8-byte stack buffer.
		li r1, 0x600
		lbu r9, 0(r1)      ; len (attacker controlled, unchecked!)
		li r10, 0x700      ; buffer[8]; canary word lives at 0x708
		li r12, 0xCA11AB1E
		sw r12, 8(r10)     ; plant canary
		addi r11, r0, 0
copy:
		beq r11, r9, done
		add r5, r1, r11
		lbu r6, 1(r5)
		add r7, r10, r11
		sb r6, 0(r7)
		addi r11, r11, 1
		slti r5, r11, 16   ; only explore a bounded prefix
		bne r5, r0, copy
done:
		lw r5, 8(r10)      ; canary intact?
		sub r1, r5, r12
		sltiu r1, r1, 1
		ecall 2            ; assert canary == 0xCA11AB1E
		halt
`

func run(mode hardsnap.Mode) (*hardsnap.Report, error) {
	analysis, err := hardsnap.Setup(hardsnap.SetupConfig{
		Firmware: firmware,
		Peripherals: []hardsnap.PeriphConfig{
			{Name: "uart0", Periph: "uart"},
		},
		Exec: hardsnap.ExecConfig{Policy: hardsnap.ConcretizeOne},
		Engine: hardsnap.EngineConfig{
			Mode:            mode,
			Searcher:        &hardsnap.RoundRobin{},
			MaxInstructions: 3_000_000,
		},
	})
	if err != nil {
		return nil, err
	}
	return analysis.Engine.Run()
}

func main() {
	fmt.Println("=== HardSnap mode: hunting the overflow ===")
	rep, err := run(hardsnap.ModeHardSnap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths: %d, bugs: %d, virtual time: %v\n",
		len(rep.Finished), len(rep.Bugs()), rep.VirtualTime.Round(time.Millisecond))
	overflowFound := false
	for _, bug := range rep.Bugs() {
		lenByte := bug.Model["sym1_0"]
		fmt.Printf("  bug at pc=%#x with len=%d", bug.PC, lenByte)
		if lenByte > 8 {
			fmt.Printf("  <- buffer overflow (len > 8 smashes the canary)")
			overflowFound = true
		}
		fmt.Println()
	}
	if !overflowFound {
		fmt.Println("  (expected overflow not found)")
	}
	hsBugs, hsTime := len(rep.Bugs()), rep.VirtualTime

	fmt.Println("\n=== Fig. 1 comparison: consistency strategies ===")
	fmt.Printf("%-14s %8s %8s %14s\n", "mode", "paths", "bugs", "virtual time")
	fmt.Printf("%-14s %8d %8d %14v\n", "hardsnap", len(rep.Finished), hsBugs, hsTime.Round(time.Millisecond))
	for _, mode := range []hardsnap.Mode{hardsnap.ModeNaiveReboot, hardsnap.ModeNaiveShared} {
		r, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if mode == hardsnap.ModeNaiveShared && len(r.Bugs()) != hsBugs {
			note = "  <- corrupted analysis (hardware shared across paths)"
		}
		if mode == hardsnap.ModeNaiveReboot {
			note = fmt.Sprintf("  <- %.0fx slower than HardSnap",
				float64(r.VirtualTime)/float64(hsTime))
		}
		fmt.Printf("%-14s %8d %8d %14v%s\n",
			mode, len(r.Finished), len(r.Bugs()), r.VirtualTime.Round(time.Millisecond), note)
	}
}
