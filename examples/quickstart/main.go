// Command quickstart is the smallest end-to-end HardSnap run: firmware
// with one symbolic input drives a timer peripheral; symbolic
// execution explores both program paths — each with its own private
// hardware state — and finds the input that triggers the buggy one.
package main

import (
	"fmt"
	"log"

	"hardsnap"
)

// The firmware reads one symbolic byte. If it is 13 it programs the
// timer with a zero reload value — making it fire immediately — and
// then runs into an assertion that the timer has not expired yet:
// a hardware-interaction bug only one input value reaches.
const firmware = `
_start:
		li r1, 0x100       ; input buffer
		addi r2, r0, 1     ; one byte
		addi r3, r0, 1     ; tag 1
		ecall 1            ; make_symbolic(buf, 1, 1)
		lbu r4, 0(r1)

		li r8, 0x40000000  ; timer MMIO base
		addi r5, r0, 13
		beq r4, r5, unlucky
		addi r6, r0, 100   ; safe reload value
		j program
unlucky:
		addi r6, r0, 0     ; bug: zero reload fires immediately
program:
		sw r6, 0(r8)       ; LOAD
		addi r6, r0, 1
		sw r6, 8(r8)       ; CTRL = enable
		nop
		nop
		nop
		lw r7, 12(r8)      ; STATUS
		xori r1, r7, 1     ; assert STATUS.expired == 0
		andi r1, r1, 1
		ecall 2
		halt
`

func main() {
	analysis, err := hardsnap.Setup(hardsnap.SetupConfig{
		Firmware: firmware,
		Peripherals: []hardsnap.PeriphConfig{
			{Name: "timer0", Periph: "timer"},
		},
		Engine: hardsnap.EngineConfig{
			Mode:     hardsnap.ModeHardSnap,
			Searcher: &hardsnap.RoundRobin{},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := analysis.Engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d paths in %v virtual time (%d instructions, %d hardware context switches)\n",
		len(report.Finished), report.VirtualTime,
		report.Stats.Instructions, report.Stats.ContextSwitches)

	for _, bug := range report.Bugs() {
		fmt.Printf("BUG: %v at pc=%#x\n", bug.Status, bug.PC)
		fmt.Printf("     triggering input: sym1_0 = %d\n", bug.Model["sym1_0"])
	}
	if len(report.Bugs()) == 0 {
		fmt.Println("no bugs found (unexpected — the seeded bug should be found)")
	}
}
