// Command hwproperty demonstrates hardware-side security properties:
// a Verilog assertion over the peripheral's *internal* registers is
// checked on every clock cycle while symbolic execution explores the
// firmware. The solver finds the exact input that drives the hardware
// into the forbidden state, and the offending path is replayed
// concretely with a VCD waveform trace for root-cause analysis —
// the paper's full workflow: detect peripheral misuse, generate the
// test vector, diagnose with full visibility.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"hardsnap"
	"hardsnap/internal/target"
	"hardsnap/internal/trace"
	"hardsnap/internal/vtime"
)

// The firmware is a small "motor controller": it accepts a speed
// command byte and programs the timer's reload value with
// 1000/speed-ish scaling. Command 0 makes the firmware program a zero
// reload with auto-reload enabled — a hardware configuration that
// would make the interrupt fire continuously (a classic peripheral
// misuse that locks up real systems).
const firmware = `
_start:
		li r1, 0x100
		addi r2, r0, 1
		addi r3, r0, 1
		ecall 1            ; speed command (symbolic)
		lbu r4, 0(r1)

		li r8, 0x40000000  ; timer
		; the driver checks for "stop" (0xFF) but forgets that a zero
		; speed also produces a zero reload value
		addi r5, r0, 0xFF
		beq r4, r5, stopped
		slli r5, r4, 4     ; reload = speed << 4 (speed 0 => 0: the bug)
		sw r5, 0(r8)       ; LOAD
		addi r6, r0, 5
		sw r6, 8(r8)       ; CTRL = enable | auto-reload
		j done
stopped:
		sw r0, 8(r8)       ; disable
done:
		nop
		nop
		nop
		nop
		halt
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	analysis, err := hardsnap.Setup(hardssnapSetup())
	if err != nil {
		return err
	}
	rep, err := analysis.Engine.Run()
	if err != nil {
		return err
	}

	fmt.Printf("explored %d paths, %d hardware property violations\n",
		len(rep.Finished), rep.Stats.HWViolations)

	var offender *hardsnap.State
	for _, st := range rep.Finished {
		if st.Status == hardsnap.StatusAssertFail {
			offender = st
			break
		}
	}
	if offender == nil {
		return fmt.Errorf("expected a violating path")
	}
	fmt.Printf("violating path: %v\n", offender.Err)
	vec, ok := analysis.Exec.TestVector(offender)
	if !ok {
		return fmt.Errorf("no test vector")
	}
	fmt.Printf("generated test vector: speed command = %d\n", vec[1][0])

	// Root-cause analysis: replay the vector concretely on a fresh
	// simulator target with a VCD waveform of the timer internals.
	clock := &vtime.Clock{}
	tgt, err := target.NewSimulator("diag", clock, []target.PeriphConfig{
		{Name: "timer0", Periph: "timer"},
	})
	if err != nil {
		return err
	}
	rtlSim, err := tgt.Simulator("timer0")
	if err != nil {
		return err
	}
	var waveform bytes.Buffer
	vcd, err := trace.New(&waveform, rtlSim, []string{"value", "load", "ctrl", "expired", "irq"})
	if err != nil {
		return err
	}
	detach := vcd.Attach()

	port, err := tgt.Port("timer0")
	if err != nil {
		return err
	}
	reload := uint32(vec[1][0]) << 4
	port.WriteReg(0x00, reload)
	port.WriteReg(0x08, 5)
	tgt.Advance(8)
	detach()

	expired, _ := tgt.Peek("timer0", "expired")
	fmt.Printf("concrete replay: reload=%d, expired after 8 cycles: %v\n", reload, expired != 0)

	if err := os.WriteFile("hwproperty.vcd", waveform.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("waveform written to hwproperty.vcd (%d bytes, open with GTKWave)\n", waveform.Len())
	return nil
}

func hardssnapSetup() hardsnap.SetupConfig {
	return hardsnap.SetupConfig{
		Firmware: firmware,
		Peripherals: []hardsnap.PeriphConfig{
			{Name: "timer0", Periph: "timer"},
		},
		HWAssertions: []hardsnap.HWAssertion{
			// The motor must never be configured with a zero reload
			// while auto-reload is on: VALUE would wrap every cycle.
			{Periph: "timer0", Name: "no-zero-autoreload",
				Expr: "!((load == 0) && (ctrl == 3'b101))"},
		},
	}
}
