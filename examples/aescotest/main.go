// Command aescotest demonstrates HardSnap's multi-target
// orchestration (Section III-B) on the AES-128 accelerator, the
// complex member of the peripheral corpus:
//
//  1. The firmware drives the accelerator on the *FPGA target* (fast,
//     but opaque: internal signals cannot be inspected).
//  2. At the point of interest — mid-encryption — the complete
//     hardware state is transferred to the *simulator target* via the
//     scan chain.
//  3. The simulator finishes the encryption with full visibility:
//     every round's internal state register can be traced.
//  4. The ciphertext is checked against Go's crypto/aes.
package main

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
	"log"

	"hardsnap"
	"hardsnap/internal/bus"
	"hardsnap/internal/target"
	"hardsnap/internal/vtime"
)

var (
	key = [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt  = [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := &vtime.Clock{}
	cfgs := []hardsnap.PeriphConfig{{Name: "aes0", Periph: "aes128"}}

	fpga, err := target.NewFPGA("fpga0", clock, cfgs, false)
	if err != nil {
		return err
	}
	sim, err := target.NewSimulator("sim0", clock, cfgs)
	if err != nil {
		return err
	}

	fp, err := fpga.Port("aes0")
	if err != nil {
		return err
	}

	// Phase 1: program key and plaintext on the FPGA, start, and run
	// a few rounds at FPGA speed.
	fmt.Println("phase 1: driving AES accelerator on the FPGA target")
	for i := 0; i < 4; i++ {
		if err := fp.WriteReg(uint32(0x10+4*i), binary.BigEndian.Uint32(key[4*i:])); err != nil {
			return err
		}
		if err := fp.WriteReg(uint32(0x20+4*i), binary.BigEndian.Uint32(pt[4*i:])); err != nil {
			return err
		}
	}
	if err := fp.WriteReg(0x00, 1); err != nil { // start
		return err
	}
	if err := fpga.Advance(4); err != nil { // part-way through the 10 rounds
		return err
	}

	// The FPGA offers no visibility into the running rounds:
	if _, err := fpga.Peek("aes0", "round"); err != nil {
		fmt.Printf("  FPGA visibility check: %v (as expected)\n", err)
	}

	// Phase 2: transfer the live hardware state, scan chain -> named
	// state -> simulator.
	fmt.Println("phase 2: transferring hardware state FPGA -> simulator")
	before := clock.Now()
	if err := target.Transfer(fpga, sim); err != nil {
		return err
	}
	fmt.Printf("  transfer cost: %v virtual time (%d state bits)\n",
		clock.Now()-before, fpga.StateBits())

	// Phase 3: full visibility on the simulator — trace each round.
	fmt.Println("phase 3: finishing encryption on the simulator with full traces")
	round, _ := sim.Peek("aes0", "round")
	fmt.Printf("  resumed at round %d\n", round)
	sp, err := sim.Port("aes0")
	if err != nil {
		return err
	}
	for {
		status, err := sp.ReadReg(0x04)
		if err != nil {
			return err
		}
		if status&2 != 0 {
			break
		}
		r, _ := sim.Peek("aes0", "round")
		s0, _ := sim.Peek("aes0", "s0")
		fmt.Printf("  trace: round=%2d state[0]=%08x\n", r, s0)
		if err := sim.Advance(1); err != nil {
			return err
		}
	}

	var got [16]byte
	for i := 0; i < 4; i++ {
		v, err := sp.ReadReg(uint32(0x30 + 4*i))
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint32(got[4*i:], v)
	}

	block, err := aes.NewCipher(key[:])
	if err != nil {
		return err
	}
	var want [16]byte
	block.Encrypt(want[:], pt[:])

	fmt.Printf("ciphertext: %x\n", got)
	fmt.Printf("reference:  %x\n", want)
	if got != want {
		return fmt.Errorf("MISMATCH: cross-target execution diverged")
	}
	fmt.Println("OK: FPGA-started encryption finished on the simulator matches crypto/aes")

	// Bonus: the same bus.Port interface serves both targets.
	var _ bus.Port = fp
	var _ bus.Port = sp
	return nil
}
