// Command soc analyzes the kind of system the paper evaluates: a
// synthetic SoC assembled from open-source-style peripherals (UART,
// AES-128, timer, GPIO) running interrupt-driven firmware, co-tested
// end to end.
//
// The firmware implements a small telemetry node:
//
//   - a timer interrupt maintains a heartbeat counter;
//   - a command packet (made symbolic) selects an action:
//     0x01 encrypt: run the payload through the AES accelerator and
//     loop the first ciphertext byte through the UART;
//     0x02 blink: drive the GPIO with the payload;
//     0x03 log: copy `len` payload bytes into a fixed 4-byte buffer —
//     with a missing bounds check (the seeded vulnerability).
//
// Symbolic execution explores all commands against live RTL
// peripherals (every path with its own hardware snapshot), finds the
// overflow, generates the crashing packet and replays it concretely.
package main

import (
	"fmt"
	"log"
	"time"

	"hardsnap"
)

const firmware = `
; SoC memory map (0x100-byte regions, IRQ = region index):
;   0x40000000 uart0   (irq 0)
;   0x40000100 aes0    (irq 1)
;   0x40000200 timer0  (irq 2)
;   0x40000300 gpio0   (irq 3)
_start:
		li sp, 0x8000

		; --- install the timer heartbeat handler (IRQ 2) ---
		la r1, heartbeat
		li r2, 0xFC8
		sw r1, 0(r2)
		li r8, 0x40000200
		li r4, 40
		sw r4, 0(r8)       ; LOAD
		addi r4, r0, 7
		sw r4, 8(r8)       ; CTRL = enable | irq | auto-reload

		; --- configure the UART in loopback ---
		li r8, 0x40000000
		addi r4, r0, 1
		sw r4, 8(r8)       ; CTRL = loopback

		; --- program the AES key ---
		li r8, 0x40000100
		li r4, 0x00010203
		sw r4, 16(r8)
		li r4, 0x04050607
		sw r4, 20(r8)
		li r4, 0x08090a0b
		sw r4, 24(r8)
		li r4, 0x0c0d0e0f
		sw r4, 28(r8)

		; --- receive a command packet: [cmd][len][d0][d1] ---
		li r1, 0x600
		addi r2, r0, 4
		addi r3, r0, 1
		ecall 1

		lbu r9, 0(r1)      ; cmd
		addi r4, r0, 1
		beq r9, r4, cmd_encrypt
		addi r4, r0, 2
		beq r9, r4, cmd_blink
		addi r4, r0, 3
		beq r9, r4, cmd_log
		j finish

cmd_encrypt:
		; plaintext block = packet padded with zeros
		li r8, 0x40000100
		lw r4, 0(r1)
		sw r4, 32(r8)      ; DIN0
		sw r0, 36(r8)
		sw r0, 40(r8)
		sw r0, 44(r8)
		addi r4, r0, 1
		sw r4, 0(r8)       ; start
enc_wait:
		lw r4, 4(r8)
		andi r4, r4, 2
		beq r4, r0, enc_wait
		lw r5, 48(r8)      ; DOUT0
		srli r5, r5, 24    ; first ciphertext byte

		; transmit it over the UART and check the loopback echo
		li r8, 0x40000000
		sw r5, 0(r8)
echo_wait:
		lw r4, 4(r8)
		andi r4, r4, 2
		beq r4, r0, echo_wait
		lw r6, 0(r8)
		sub r1, r6, r5
		sltiu r1, r1, 1
		ecall 2            ; echo must match ciphertext byte
		j finish

cmd_blink:
		li r8, 0x40000300
		li r4, 0xFFFFFFFF
		sw r4, 8(r8)       ; DIR
		lhu r4, 2(r1)      ; payload halfword
		sw r4, 0(r8)       ; OUT
		lw r5, 0(r8)
		sub r1, r5, r4
		sltiu r1, r1, 1
		ecall 2            ; GPIO must latch the value
		j finish

cmd_log:
		; copy len payload bytes into logbuf[4]; canary follows it.
		lbu r9, 1(r1)      ; len (unchecked!)
		li r10, 0x700      ; logbuf
		li r12, 0x5AFE5AFE
		sw r12, 4(r10)     ; canary
		addi r11, r0, 0
log_copy:
		beq r11, r9, log_done
		add r5, r1, r11
		lbu r6, 2(r5)
		add r7, r10, r11
		sb r6, 0(r7)
		addi r11, r11, 1
		slti r5, r11, 8    ; bounded exploration
		bne r5, r0, log_copy
log_done:
		lw r5, 4(r10)
		sub r1, r5, r12
		sltiu r1, r1, 1
		ecall 2            ; canary intact?
		j finish

finish:
		; heartbeat must have ticked at least once by now on long paths
		halt

heartbeat:
		; interrupt handlers must preserve every register they touch —
		; the analysis catches the spurious assertion failures (and
		; replay divergence) immediately if these saves are removed.
		addi sp, sp, -8
		sw r4, 0(sp)
		sw r5, 4(sp)
		addi r13, r13, 1
		li r4, 1
		li r5, 0x4000020C
		sw r4, 0(r5)       ; ack timer
		lw r4, 0(sp)
		lw r5, 4(sp)
		addi sp, sp, 8
		mret
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	analysis, err := hardsnap.Setup(hardsnap.SetupConfig{
		Firmware: firmware,
		Peripherals: []hardsnap.PeriphConfig{
			{Name: "uart0", Periph: "uart"},
			{Name: "aes0", Periph: "aes128"},
			{Name: "timer0", Periph: "timer"},
			{Name: "gpio0", Periph: "gpio"},
		},
		Engine: hardsnap.EngineConfig{
			Mode:             hardsnap.ModeHardSnap,
			Searcher:         hardsnap.BFS{},
			MaxInstructions:  2_000_000,
			KeepBugSnapshots: true,
		},
	})
	if err != nil {
		return err
	}

	fmt.Println("analyzing the 4-peripheral SoC (uart, aes128, timer, gpio)...")
	rep, err := analysis.Engine.Run()
	if err != nil {
		return err
	}
	fmt.Printf("paths: %d  instructions: %d  hardware context switches: %d  virtual time: %v\n",
		len(rep.Finished), rep.Stats.Instructions, rep.Stats.ContextSwitches,
		rep.VirtualTime.Round(time.Millisecond))

	bugs := rep.Bugs()
	fmt.Printf("bugs found: %d\n", len(bugs))
	for _, bug := range bugs {
		vec, ok := analysis.Exec.TestVector(bug)
		if !ok {
			continue
		}
		pkt := vec[1]
		fmt.Printf("  %v at pc=%#x — packet [cmd=%#02x len=%d data=%02x %02x]\n",
			bug.Status, bug.PC, pkt[0], pkt[1], pkt[2], pkt[3])

		res, err := analysis.Replay(bug)
		if err != nil {
			return err
		}
		fmt.Printf("  concrete replay: %v (reproduced: %v)\n", res.Stop, res.Reproduced)
	}
	if len(bugs) == 0 {
		return fmt.Errorf("expected to find the cmd_log overflow")
	}
	return nil
}
