// Package hardsnap is a pure-Go reproduction of "HardSnap: Leveraging
// Hardware Snapshotting for Embedded Systems Security Testing"
// (Corteggiani & Francillon, DSN 2020): a hardware/software co-testing
// framework in which a selective symbolic virtual machine executes
// firmware while every execution path owns a private snapshot of the
// peripheral hardware state.
//
// The package is a facade over the implementation packages:
//
//   - Setup/Run an analysis: firmware (HS32 assembly) + peripherals
//     (Verilog, simulated cycle-accurately) + engine mode;
//   - four consistency modes (HardSnap, naive-reboot, naive-shared,
//     record-replay) reproducing the paper's Fig. 1 and related work;
//   - two hardware targets (software simulator with full visibility,
//     FPGA model with scan-chain or readback snapshotting) with
//     cross-target state transfer;
//   - a scan-chain instrumentation toolchain for Verilog sources;
//   - hardware property assertions (Verilog expressions over
//     peripheral internals, checked every cycle) for detecting
//     peripheral misuse with solver-generated test vectors;
//   - a coverage-guided fuzzer with snapshot-based state reset.
//
// See the examples directory for runnable end-to-end scenarios and
// DESIGN.md for the architecture.
package hardsnap

import (
	"hardsnap/internal/asm"
	"hardsnap/internal/core"
	"hardsnap/internal/fuzz"
	"hardsnap/internal/periph"
	"hardsnap/internal/scanchain"
	"hardsnap/internal/symexec"
	"hardsnap/internal/target"
	"hardsnap/internal/verilog"
	"hardsnap/internal/vm"
)

// Analysis setup and engine.
type (
	// SetupConfig describes a complete analysis (firmware, SoC,
	// engine and executor parameters).
	SetupConfig = core.SetupConfig
	// Analysis bundles the wired-up components of one run.
	Analysis = core.Analysis
	// EngineConfig parameterizes the engine.
	EngineConfig = core.Config
	// Mode selects the hardware consistency strategy.
	Mode = core.Mode
	// Report is the outcome of an engine run.
	Report = core.Report
)

// Engine modes (Fig. 1 of the paper).
const (
	ModeHardSnap     = core.ModeHardSnap
	ModeNaiveReboot  = core.ModeNaiveReboot
	ModeNaiveShared  = core.ModeNaiveShared
	ModeRecordReplay = core.ModeRecordReplay
)

// Setup assembles the firmware, builds the hardware target and bus,
// and wires the analysis engine. Optionally call Analysis.FastForward
// before Engine.Run to execute the deterministic init prefix
// concretely at native speed (the paper's fast-forwarding).
func Setup(cfg SetupConfig) (*Analysis, error) { return core.Setup(cfg) }

// Symbolic execution.
type (
	// ExecConfig parameterizes the symbolic executor.
	ExecConfig = symexec.Config
	// State is one symbolic execution state.
	State = symexec.State
	// Searcher picks the next state to run.
	Searcher = symexec.Searcher
	// DFS continues the most recent state.
	DFS = symexec.DFS
	// BFS explores in creation order.
	BFS = symexec.BFS
	// RoundRobin steps every state in turn.
	RoundRobin = symexec.RoundRobin
)

// Concretization policies at the hardware boundary.
const (
	ConcretizeOne = symexec.ConcretizeOne
	ConcretizeAll = symexec.ConcretizeAll
)

// State statuses.
const (
	StatusRunning    = symexec.StatusRunning
	StatusHalted     = symexec.StatusHalted
	StatusAborted    = symexec.StatusAborted
	StatusAssertFail = symexec.StatusAssertFail
	StatusFault      = symexec.StatusFault
)

// NewCoverageSearcher returns a coverage-guided searcher.
func NewCoverageSearcher() Searcher { return symexec.NewCoverage() }

// NewRandomSearcher returns a seeded random searcher.
func NewRandomSearcher(seed int64) Searcher { return symexec.NewRandom(seed) }

// Hardware targets.
type (
	// PeriphConfig selects one peripheral instance for a target.
	PeriphConfig = target.PeriphConfig
	// Target hosts peripherals on one execution vehicle.
	Target = target.Target
	// HWState is a portable whole-target snapshot.
	HWState = target.State
	// HWAssertion is a hardware property (Verilog expression over
	// peripheral signals) checked every cycle on the simulator target.
	HWAssertion = target.HWAssertion
	// Violation reports one failed hardware assertion.
	Violation = target.Violation
)

// Transfer moves the hardware state between targets (FPGA <-> sim).
func Transfer(from, to *Target) error { return target.Transfer(from, to) }

// Target robustness: fault injection, retry and failover.
type (
	// FaultSchedule deterministically describes link misbehavior
	// (dropped frames, corruption, jitter, permanent death).
	FaultSchedule = target.FaultSchedule
	// RetryPolicy bounds transient-fault retries on a target link.
	RetryPolicy = target.RetryPolicy
	// TargetStats are cumulative target-side counters (cycles, IO,
	// snapshots, retries, failovers).
	TargetStats = target.Stats
	// TargetError is a typed target failure carrying its class
	// (transient, fatal, integrity).
	TargetError = target.Error
)

// Error classification helpers for target and remote failures.
var (
	// IsTransient reports a retry-worthy fault (dropped or corrupted
	// frame, timeout).
	IsTransient = target.IsTransient
	// IsFatal reports an unrecoverable failure (dead target, protocol
	// violation).
	IsFatal = target.IsFatal
	// IsIntegrity reports corrupted or mismatched snapshot data.
	IsIntegrity = target.IsIntegrity
)

// EncodeHWState serializes a hardware snapshot with an integrity
// header (magic, version, length, CRC-32).
func EncodeHWState(s HWState) ([]byte, error) { return target.EncodeState(s) }

// DecodeHWState validates and deserializes a snapshot produced by
// EncodeHWState; truncated or corrupted data is rejected with an
// integrity error.
func DecodeHWState(data []byte) (HWState, error) { return target.DecodeState(data) }

// Peripheral corpus.
type (
	// PeriphSpec describes a corpus peripheral.
	PeriphSpec = periph.Spec
)

// Peripherals lists the built-in peripheral corpus.
func Peripherals() []PeriphSpec { return periph.All() }

// Scan-chain instrumentation.
type (
	// InstrumentOptions configures the scan-chain pass.
	InstrumentOptions = scanchain.Options
	// InstrumentReport summarizes instrumentation of one module.
	InstrumentReport = scanchain.Report
)

// InstrumentVerilog parses Verilog source, inserts a scan chain into
// the module hierarchy rooted at top, and returns the instrumented
// source plus per-module reports.
func InstrumentVerilog(src, top string, opts InstrumentOptions) (string, map[string]*InstrumentReport, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return "", nil, err
	}
	reports, err := scanchain.InstrumentAll(f, top, opts)
	if err != nil {
		return "", nil, err
	}
	return verilog.Print(f), reports, nil
}

// Assembler.
type (
	// Program is an assembled firmware image.
	Program = asm.Program
)

// Assemble translates HS32 assembly into a firmware image loaded at
// base.
func Assemble(src string, base uint32) (*Program, error) {
	return asm.Assemble(src, base)
}

// Fuzzing.
type (
	// FuzzConfig parameterizes a fuzzing campaign.
	FuzzConfig = fuzz.Config
	// FuzzResult summarizes a campaign.
	FuzzResult = fuzz.Result
	// Crash describes one crashing input.
	Crash = fuzz.Crash
)

// Fuzz reset strategies.
const (
	ResetReboot   = fuzz.ResetReboot
	ResetSnapshot = fuzz.ResetSnapshot
	ResetNone     = fuzz.ResetNone
)

// Fuzz runs a coverage-guided fuzzing campaign.
func Fuzz(cfg FuzzConfig) (*FuzzResult, error) { return fuzz.Run(cfg) }

// Concrete VM (used by the fuzzer; exposed for custom harnesses).
type (
	// CPU is the concrete HS32 machine.
	CPU = vm.CPU
	// VMConfig describes the machine memory layout.
	VMConfig = vm.Config
)
