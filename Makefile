GO ?= go

.PHONY: check fmt vet build test race

# Full gate: formatting, static checks, build, tests, race detector on
# the concurrency-sensitive packages.
check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/remote ./internal/target
