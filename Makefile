GO ?= go

.PHONY: check fmt vet build test race chaos bench-smoke bench-json bench-scale bench-remote bench-solver bench-sim bench-dist bench-fuzz

# Full gate: formatting, static checks, build, tests, race detector on
# the concurrency-sensitive packages, chaos/recovery identity matrix.
check: fmt vet build test race chaos

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race gate covers every concurrency-sensitive package, including
# the v3 batching/pipelining layer (internal/remote: client send
# window, async flushes and server session live on different
# goroutines in every test that uses v3Pipe/TCP) and the parallel
# fuzzer (internal/fuzz: N workers over a lock-striped coverage map
# and a shared corpus).
race:
	$(GO) test -race ./internal/remote ./internal/target ./internal/core ./internal/snapshot ./internal/solver ./internal/expr ./internal/symexec ./internal/campaign ./internal/farm ./internal/dist ./internal/fuzz

# chaos runs the crash-safety identity matrix under the race detector:
# deterministic failure injection (panic/kill/hang/sever), journal
# resume (process death, torn tails, mismatched configs) and mid-run
# remote link failover. Every test asserts byte-identical results
# (bugs, paths AND virtual time) against an undisturbed run, on fixed
# chaos seeds so failures reproduce.
chaos:
	$(GO) test -race ./internal/core -run 'Chaos|Resume|Journal'
	$(GO) test -race ./internal/remote -run 'Failover|SeverLink|RecoverRetry'
	$(GO) test -race ./internal/journal

# bench-smoke runs every Benchmark* exactly once so benchmarks cannot
# silently rot without anyone noticing.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json emits the experiments' machine-readable metrics, for
# recording BENCH_*.json trajectories across revisions.
bench-json:
	$(GO) run ./cmd/hsbench -json

# bench-scale exercises the parallel exploration engine under the race
# detector at 1 and 4 workers (E11 checks that both worker counts find
# identical path counts and bug sets).
bench-scale:
	$(GO) run -race ./cmd/hsbench -workers 1 e11
	$(GO) run -race ./cmd/hsbench -workers 4 e11

# bench-remote runs the remote-protocol latency experiment (E12) on a
# zero-latency loopback and with 500µs one-way injected latency; the
# experiment itself asserts the v3 round-trip reduction and the
# wall-clock win over the one-op-per-frame v2 leg.
bench-remote:
	$(GO) run ./cmd/hsbench -latency 0 e12
	$(GO) run ./cmd/hsbench -latency 500us e12

# bench-sim runs the RTL-engine study (E16). The experiment gates
# itself: >=5x compiled-vs-interpreter on busy logic, >=20x with
# activation on a quiescent SoC, cycle-exact differential identity and
# an unchanged exploration fingerprint — so this target fails on any
# engine semantics or performance regression.
bench-sim:
	$(GO) run ./cmd/hsbench e16

# bench-dist runs the distributed-exploration study (E17) over
# loopback TCP with 500µs one-way injected latency per side. The
# experiment gates itself: every leg's fingerprint byte-identical to
# the standalone runner, >=2x paths/sec with 3 warm nodes vs 1, and
# >=5x fewer snapshot bytes on the wire with the shared digest fabric
# than with independent per-node caches.
bench-dist:
	$(GO) run ./cmd/hsbench e17

# bench-fuzz runs the hybrid-fuzzing study (E18). The experiment
# gates itself: >=10x execs per virtual second with parallel workers
# vs the frozen map-based reference fuzzer, identical deduplicated
# crash buckets in single-worker fixed-seed mode, and the hybrid
# concolic loop beating both fuzz-only and symexec-only to a
# magic-guarded bug — so this target fails on any fuzzer throughput
# or fidelity regression.
bench-fuzz:
	$(GO) run ./cmd/hsbench e18

# bench-solver A/B-tests the solver optimization stack (E13): the
# experiment itself gates on identical paths/bugs/virtual times with
# the stack on vs off and on a >=2x SAT-effort reduction on the
# exploration workloads.
bench-solver:
	$(GO) run ./cmd/hsbench -json e13
