GO ?= go

.PHONY: check fmt vet build test race bench-smoke bench-json bench-scale

# Full gate: formatting, static checks, build, tests, race detector on
# the concurrency-sensitive packages.
check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/remote ./internal/target ./internal/core ./internal/snapshot ./internal/solver ./internal/expr ./internal/symexec

# bench-smoke runs every Benchmark* exactly once so benchmarks cannot
# silently rot without anyone noticing.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-json emits the experiments' machine-readable metrics, for
# recording BENCH_*.json trajectories across revisions.
bench-json:
	$(GO) run ./cmd/hsbench -json

# bench-scale exercises the parallel exploration engine under the race
# detector at 1 and 4 workers (E11 checks that both worker counts find
# identical path counts and bug sets).
bench-scale:
	$(GO) run -race ./cmd/hsbench -workers 1 e11
	$(GO) run -race ./cmd/hsbench -workers 4 e11
